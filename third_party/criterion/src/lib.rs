//! Minimal offline stand-in for the `criterion` crate (0.5 API surface).
//!
//! The build environment has no network access, so the workspace patches
//! `criterion` to this crate (see the workspace `Cargo.toml`). It keeps
//! the benchmark targets compiling and producing useful wall-clock
//! numbers: each `bench_function` runs a short warm-up, then
//! `sample_size` timed passes, and prints the mean/min time per
//! iteration. No statistics engine, no plots, no saved baselines.

use std::time::{Duration, Instant};

/// Opaque blocker preventing the optimiser from deleting benchmark work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Entry point handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\nbench group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 100,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark: `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`].
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // Warm-up pass (also catches panics early with a clear context).
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mean = bencher
            .samples
            .iter()
            .sum::<Duration>()
            .checked_div(bencher.samples.len() as u32)
            .unwrap_or_default();
        let min = bencher.samples.iter().min().copied().unwrap_or_default();
        eprintln!(
            "  {}/{}: mean {:?}  min {:?}  ({} samples)",
            self.name,
            id,
            mean,
            min,
            bencher.samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Times one benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, recording one sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

/// Collects benchmark functions into a single runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_run_and_record_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("stub");
        group.sample_size(5);
        let mut runs = 0u32;
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // One warm-up call plus sample_size timed calls, each one iter.
        assert_eq!(runs, 6);
    }

    criterion_group!(example, noop_bench);
    criterion_main!(example);

    fn noop_bench(c: &mut Criterion) {
        c.benchmark_group("noop")
            .bench_function("nothing", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn generated_main_is_callable() {
        main();
    }
}
