//! End-to-end tests for the network query service: the remote path must
//! be a *transparent* proxy for the in-process batch APIs — byte-identical
//! results and identical per-query cost metrics — and the admission layer
//! must enforce its load-shedding and deadline contracts under real
//! concurrent TCP load.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use spb::metric::{dataset, MetricObject, Word};
use spb::storage::TempDir;
use spb::{SpbConfig, SpbTree};
use spb_server::{
    open_index, schema_path, serve, AdmissionConfig, Client, ClientError, ErrorCode, Request,
    Response, Schema, ServerConfig,
};

const RADIUS: f64 = 2.0;
const K: u32 = 5;
const CACHE_PAGES: usize = 32;
const SHARDS: usize = 4;

/// Builds a words index with its `cli.schema` and returns the dataset.
fn build_words(dir: &TempDir, n: usize, seed: u64) -> (Vec<Word>, usize) {
    let data = dataset::words(n, seed);
    let max_len = data.iter().map(Word::len).max().unwrap_or(1);
    let tree = SpbTree::build(
        dir.path(),
        &data,
        spb::metric::EditDistance::new(max_len),
        &SpbConfig::default(),
    )
    .unwrap();
    drop(tree);
    std::fs::write(schema_path(dir.path()), Schema::Words { max_len }.to_line()).unwrap();
    (data, max_len)
}

fn start_server(dir: &TempDir, cfg: ServerConfig) -> spb_server::ServerHandle {
    let service = open_index(dir.path(), CACHE_PAGES, SHARDS).unwrap();
    serve(service, "127.0.0.1:0", cfg).unwrap()
}

/// The tentpole acceptance check: remote batch range and kNN return
/// byte-identical hits and identical `QueryStats` (minus wall-clock) to
/// the in-process batch APIs over the same index directory.
#[test]
fn remote_batches_are_byte_identical_to_in_process() {
    let dir = TempDir::new("e2e-identical");
    let (data, max_len) = build_words(&dir, 600, 42);
    let queries: Vec<Word> = data[..24].to_vec();

    // In-process reference, opened exactly like the server opens it
    // (same cache capacity and striping — per-query stats are computed
    // against a simulated cold cache of the pool's capacity, so the
    // configurations must match for identical numbers).
    let tree = SpbTree::open_sharded(
        dir.path(),
        spb::metric::EditDistance::new(max_len),
        CACHE_PAGES,
        true,
        SHARDS,
    )
    .unwrap();
    let pairs: Vec<(Word, f64)> = queries.iter().map(|q| (q.clone(), RADIUS)).collect();
    let local_range = tree.range_batch(&pairs, SHARDS).unwrap();
    let local_knn = tree.knn_batch(&queries, K as usize, SHARDS).unwrap();
    drop(tree); // release the directory before the server opens it

    let server = start_server(&dir, ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();
    let objs: Vec<Vec<u8>> = queries.iter().map(MetricObject::encoded).collect();

    let remote_range = client.batch_range(objs.clone(), RADIUS, 0).unwrap();
    assert_eq!(remote_range.len(), local_range.len());
    for (i, ((r_hits, r_stats), (l_hits, l_stats))) in
        remote_range.iter().zip(&local_range).enumerate()
    {
        let local_bytes: Vec<(u32, Vec<u8>)> =
            l_hits.iter().map(|(id, w)| (*id, w.encoded())).collect();
        assert_eq!(r_hits, &local_bytes, "range query {i}: hits differ");
        assert_eq!(r_stats.compdists, l_stats.compdists, "range query {i}");
        assert_eq!(
            r_stats.page_accesses, l_stats.page_accesses,
            "range query {i}"
        );
        assert_eq!(r_stats.btree_pa, l_stats.btree_pa, "range query {i}");
        assert_eq!(r_stats.raf_pa, l_stats.raf_pa, "range query {i}");
        assert_eq!(r_stats.fsyncs, l_stats.fsyncs, "range query {i}");
    }

    let remote_knn = client.batch_knn(objs, K, 0).unwrap();
    assert_eq!(remote_knn.len(), local_knn.len());
    for (i, ((r_nn, r_stats), (l_nn, l_stats))) in remote_knn.iter().zip(&local_knn).enumerate() {
        let local_bytes: Vec<(u32, f64, Vec<u8>)> = l_nn
            .iter()
            .map(|(id, w, d)| (*id, *d, w.encoded()))
            .collect();
        assert_eq!(r_nn, &local_bytes, "knn query {i}: neighbours differ");
        assert_eq!(r_stats.compdists, l_stats.compdists, "knn query {i}");
        assert_eq!(
            r_stats.page_accesses, l_stats.page_accesses,
            "knn query {i}"
        );
        assert_eq!(r_stats.btree_pa, l_stats.btree_pa, "knn query {i}");
        assert_eq!(r_stats.raf_pa, l_stats.raf_pa, "knn query {i}");
        assert_eq!(r_stats.fsyncs, l_stats.fsyncs, "knn query {i}");
    }
}

/// Eight clients hammering a gate with one slot and no queue: the server
/// must shed (bounded queue, typed `Overloaded`) yet keep serving what
/// it admits — never collapse, never queue without bound.
#[test]
fn overload_sheds_with_bounded_queue() {
    let dir = TempDir::new("e2e-overload");
    let (data, _) = build_words(&dir, 400, 43);
    let server = start_server(
        &dir,
        ServerConfig {
            admission: AdmissionConfig {
                max_inflight: 1,
                max_queue: 0,
            },
            ..ServerConfig::default()
        },
    );
    let addr = server.addr();
    let shed = Arc::new(AtomicU64::new(0));
    let ok = Arc::new(AtomicU64::new(0));
    let queries: Arc<Vec<Vec<u8>>> =
        Arc::new(data[..16].iter().map(MetricObject::encoded).collect());

    let handles: Vec<_> = (0..8)
        .map(|c| {
            let (shed, ok, queries) = (Arc::clone(&shed), Arc::clone(&ok), Arc::clone(&queries));
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                for i in 0..30 {
                    match client.range(&queries[(c + i) % queries.len()], RADIUS, 0) {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ClientError::Server {
                            code: ErrorCode::Overloaded,
                            ..
                        }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(e) => panic!("client {c}: unexpected failure {e}"),
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let (shed, ok) = (shed.load(Ordering::Relaxed), ok.load(Ordering::Relaxed));
    assert!(shed > 0, "8 clients vs 1 slot must shed ({ok} ok)");
    assert!(ok > 0, "admitted requests must succeed ({shed} shed)");
    assert_eq!(shed + ok, 8 * 30, "every request got a definite answer");
    assert_eq!(server.shed_count(), shed, "server counts what clients saw");
}

/// A request whose deadline cannot be met is answered
/// `DeadlineExceeded`, checked both at admission and between the
/// service's traversal batches.
#[test]
fn expired_deadlines_get_typed_errors() {
    let dir = TempDir::new("e2e-deadline");
    let (data, _) = build_words(&dir, 2_000, 44);
    let server = start_server(&dir, ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    // A large batch with a 1 ms budget: the deadline check between
    // traversal slices must trip long before the batch completes.
    let objs: Vec<Vec<u8>> = data[..256].iter().map(MetricObject::encoded).collect();
    let err = client.batch_range(objs, RADIUS, 1).unwrap_err();
    match err {
        ClientError::Server {
            code: ErrorCode::DeadlineExceeded,
            ..
        } => {}
        other => panic!("expected DeadlineExceeded, got {other}"),
    }

    // The connection survives a deadline miss: the next request works.
    let (_, stats) = client.range(&data[0].encoded(), RADIUS, 0).unwrap();
    assert!(stats.compdists > 0);
}

/// Zeroes the server-side wall-clock field so responses can be compared
/// byte-for-byte (everything else the server returns is deterministic).
fn normalize(mut resp: Response) -> Response {
    match &mut resp {
        Response::Range { stats, .. }
        | Response::Knn { stats, .. }
        | Response::Insert { stats }
        | Response::Delete { stats, .. } => stats.duration_nanos = 0,
        Response::BatchRange { queries } => {
            for (_, s) in queries.iter_mut() {
                s.duration_nanos = 0;
            }
        }
        Response::BatchKnn { queries } => {
            for (_, s) in queries.iter_mut() {
                s.duration_nanos = 0;
            }
        }
        _ => {}
    }
    resp
}

/// A mixed pipelined workload (with deliberate duplicate queries, which
/// the dispatcher may collapse into batch calls) must come back in
/// request order with responses byte-identical to sequential execution.
#[test]
fn pipelined_responses_match_sequential_execution() {
    let dir = TempDir::new("e2e-pipeline");
    let (data, _) = build_words(&dir, 500, 45);
    let server = start_server(&dir, ServerConfig::default());

    let mut reqs: Vec<Request> = Vec::new();
    for i in 0..48 {
        let obj = data[i % 12].encoded();
        if i % 3 == 0 {
            reqs.push(Request::Knn {
                deadline_ms: 0,
                k: K,
                obj,
            });
        } else {
            reqs.push(Request::Range {
                deadline_ms: 0,
                radius: RADIUS,
                obj,
            });
        }
    }

    let mut seq_client = Client::connect(server.addr()).unwrap();
    let sequential: Vec<Vec<u8>> = reqs
        .iter()
        .map(|r| normalize(seq_client.request(r).unwrap()).encode())
        .collect();

    let mut pipe_client = Client::connect(server.addr()).unwrap();
    let pipelined = pipe_client.send_many(&reqs).unwrap();
    assert_eq!(pipelined.len(), reqs.len());
    for (i, (p, s)) in pipelined.into_iter().zip(&sequential).enumerate() {
        assert_eq!(
            &normalize(p).encode(),
            s,
            "pipelined response {i} differs from sequential execution"
        );
    }
}

/// The same in-order, byte-identical guarantee must hold when the
/// transport misbehaves: request bytes dribbled into the server a few
/// bytes at a time (the server state machine resumes partial frames
/// across reads) and replies read back through a 3-bytes-per-call
/// reader (the client-side framing resumes partial reads).
#[test]
fn pipelining_survives_injected_partial_reads_and_writes() {
    let dir = TempDir::new("e2e-partial-io");
    let (data, _) = build_words(&dir, 300, 46);
    let server = start_server(&dir, ServerConfig::default());

    let reqs: Vec<Request> = (0..8)
        .map(|i| Request::Range {
            deadline_ms: 0,
            radius: RADIUS,
            obj: data[i].encoded(),
        })
        .collect();

    let mut seq_client = Client::connect(server.addr()).unwrap();
    let sequential: Vec<Vec<u8>> = reqs
        .iter()
        .map(|r| normalize(seq_client.request(r).unwrap()).encode())
        .collect();

    let mut s = TcpStream::connect(server.addr()).unwrap();
    s.set_nodelay(true).unwrap();
    let mut bytes = Vec::new();
    for r in &reqs {
        spb_server::wire::frame_into(&mut bytes, |out| r.encode_into(out));
    }
    for chunk in bytes.chunks(7) {
        s.write_all(chunk).unwrap();
        s.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }

    struct Trickle<'a>(&'a mut TcpStream);
    impl Read for Trickle<'_> {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            let n = buf.len().min(3);
            self.0.read(&mut buf[..n])
        }
    }
    let mut tr = Trickle(&mut s);
    for (i, want) in sequential.iter().enumerate() {
        let payload =
            spb_server::wire::read_frame(&mut tr, spb_server::wire::DEFAULT_MAX_FRAME).unwrap();
        let got = normalize(Response::decode(&payload).unwrap()).encode();
        assert_eq!(&got, want, "response {i} differs under partial I/O");
    }
}

/// Inserts and deletes inside a pipeline are full ordering barriers: a
/// read queued after a write must observe it, and reads queued before
/// it must not — exactly the semantics of sequential execution.
#[test]
fn pipelined_writes_act_as_ordering_barriers() {
    let dir = TempDir::new("e2e-pipeline-barrier");
    let (_, _) = build_words(&dir, 300, 47);
    let server = start_server(&dir, ServerConfig::default());
    let mut client = Client::connect(server.addr()).unwrap();

    let novel = Word::new("zzzpipeline").encoded();
    let probe = || Request::Range {
        deadline_ms: 0,
        radius: 0.0,
        obj: novel.clone(),
    };
    let reqs = vec![
        probe(),
        Request::Insert {
            deadline_ms: 0,
            obj: novel.clone(),
        },
        probe(),
        Request::Delete {
            deadline_ms: 0,
            obj: novel.clone(),
        },
        probe(),
    ];
    let resps = client.send_many(&reqs).unwrap();
    assert_eq!(resps.len(), 5);
    match &resps[0] {
        Response::Range { hits, .. } => assert!(hits.is_empty(), "not inserted yet"),
        other => panic!("expected Range, got {other:?}"),
    }
    assert!(matches!(&resps[1], Response::Insert { .. }), "{resps:?}");
    match &resps[2] {
        Response::Range { hits, .. } => {
            assert!(
                hits.iter().any(|(_, o)| o == &novel),
                "read after the insert barrier must observe it"
            );
        }
        other => panic!("expected Range, got {other:?}"),
    }
    match &resps[3] {
        Response::Delete { found, .. } => assert!(*found),
        other => panic!("expected Delete, got {other:?}"),
    }
    match &resps[4] {
        Response::Range { hits, .. } => {
            assert!(hits.is_empty(), "read after the delete barrier sees no hit")
        }
        other => panic!("expected Range, got {other:?}"),
    }
}
