//! The B⁺-tree proper: bulk-loading, insertion, deletion, search, scans.

use std::io;
use std::path::Path;

use parking_lot::Mutex;
use spb_storage::{BufferPool, IoStats, Page, PageId, Pager};

use crate::node::{
    ChildEntry, InternalNode, LeafNode, Mbb, Node, INTERNAL_CAPACITY, LEAF_CAPACITY,
};

const MAGIC: u64 = 0x5350_4242_5452_4545; // "SPBBTREE"
const NO_PAGE: u64 = u64::MAX;

/// Geometry callbacks: how to combine the opaque `u128` MBB corners.
///
/// The SPB-tree implements this with its space-filling curve (decode →
/// coordinate-wise min/max → encode); the M-Index uses [`PointMbb`], under
/// which MBBs degenerate to key ranges.
pub trait MbbOps: Send + Sync {
    /// The box covering a single key. For SFC-encoded corners this is the
    /// key itself twice (a point's low and high corners coincide).
    fn key_box(&self, key: u128) -> Mbb {
        Mbb { lo: key, hi: key }
    }

    /// The smallest box covering both `a` and `b`.
    fn union(&self, a: Mbb, b: Mbb) -> Mbb;
}

/// Degenerate MBB algebra: corners are plain keys, union is the interval
/// hull. Correct whenever keys are one-dimensional quantities.
#[derive(Clone, Copy, Debug, Default)]
pub struct PointMbb;

impl MbbOps for PointMbb {
    fn union(&self, a: Mbb, b: Mbb) -> Mbb {
        Mbb {
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Meta {
    root: Option<PageId>,
    height: u32, // 1 = root is a leaf
    first_leaf: Option<PageId>,
    len: u64,
}

impl Meta {
    fn encode(&self) -> Page {
        let mut p = Page::new();
        p.write_u64(0, MAGIC);
        p.write_u64(8, self.root.map_or(NO_PAGE, |r| r.0));
        p.write_u32(16, self.height);
        p.write_u64(24, self.first_leaf.map_or(NO_PAGE, |r| r.0));
        p.write_u64(32, self.len);
        p
    }

    fn decode(p: &Page) -> io::Result<Meta> {
        if p.read_u64(0) != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a B+-tree file",
            ));
        }
        let opt = |v: u64| if v == NO_PAGE { None } else { Some(PageId(v)) };
        Ok(Meta {
            root: opt(p.read_u64(8)),
            height: p.read_u32(16),
            first_leaf: opt(p.read_u64(24)),
            len: p.read_u64(32),
        })
    }
}

/// What an insertion reports to its parent level.
enum InsertUp {
    /// The child absorbed the key; its summary may have changed.
    Updated { min_key: u128, mbb: Mbb },
    /// The child split; `right` is the new sibling to link in.
    Split {
        left_min: u128,
        left_mbb: Mbb,
        right: ChildEntry,
    },
}

/// What a deletion reports to its parent level.
enum DeleteUp {
    NotFound,
    /// Entry removed; fresh summary, and whether the child is now empty
    /// (in which case the parent drops it — we merge lazily rather than
    /// rebalancing, which keeps keys valid and heights bounded).
    Updated {
        min_key: u128,
        mbb: Mbb,
        now_empty: bool,
    },
}

/// A disk-based B⁺-tree over `(u128 key, u64 value)` pairs with per-child
/// MBB annotations. See the crate docs for the role it plays in the
/// SPB-tree.
pub struct BPlusTree<M: MbbOps> {
    pool: BufferPool,
    meta: Mutex<Meta>,
    ops: M,
}

impl<M: MbbOps> BPlusTree<M> {
    /// Creates an empty tree at `path` with a page cache of `cache_pages`.
    pub fn create(path: &Path, cache_pages: usize, ops: M) -> io::Result<Self> {
        Self::create_sharded(path, cache_pages, 1, ops)
    }

    /// [`BPlusTree::create`] with a lock-striped page cache (`shards`
    /// stripes) for concurrent readers.
    pub fn create_sharded(
        path: &Path,
        cache_pages: usize,
        shards: usize,
        ops: M,
    ) -> io::Result<Self> {
        let pool = BufferPool::new_sharded(Pager::create(path)?, cache_pages, shards);
        let meta_page = pool.allocate()?;
        debug_assert_eq!(meta_page, PageId(0));
        let meta = Meta {
            root: None,
            height: 0,
            first_leaf: None,
            len: 0,
        };
        pool.write(meta_page, meta.encode())?;
        Ok(BPlusTree {
            pool,
            meta: Mutex::new(meta),
            ops,
        })
    }

    /// Opens an existing tree.
    pub fn open(path: &Path, cache_pages: usize, ops: M) -> io::Result<Self> {
        Self::open_sharded(path, cache_pages, 1, ops)
    }

    /// [`BPlusTree::open`] with a lock-striped page cache (`shards` stripes).
    pub fn open_sharded(
        path: &Path,
        cache_pages: usize,
        shards: usize,
        ops: M,
    ) -> io::Result<Self> {
        let pool = BufferPool::new_sharded(Pager::open(path)?, cache_pages, shards);
        let meta_page = pool.read(PageId(0))?;
        let meta = Meta::decode(&meta_page)?;
        Ok(BPlusTree {
            pool,
            meta: Mutex::new(meta),
            ops,
        })
    }

    /// Number of key/value pairs.
    pub fn len(&self) -> u64 {
        self.meta.lock().len
    }

    /// True iff the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree height (0 = empty, 1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.meta.lock().height
    }

    /// The root page, if the tree is non-empty.
    pub fn root_page(&self) -> Option<PageId> {
        self.meta.lock().root
    }

    /// The leftmost leaf, if any (start of the leaf chain).
    pub fn first_leaf(&self) -> Option<PageId> {
        self.meta.lock().first_leaf
    }

    /// Reads and decodes a node (one counted page access).
    pub fn read_node(&self, id: PageId) -> io::Result<Node> {
        let page = self.pool.read(id)?;
        Ok(Node::decode(id, &page))
    }

    /// The MBB of an already-decoded node (union over entries).
    /// `None` for an empty node.
    pub fn node_mbb(&self, node: &Node) -> Option<Mbb> {
        match node {
            Node::Leaf(l) => l
                .keys
                .iter()
                .map(|&k| self.ops.key_box(k))
                .reduce(|a, b| self.ops.union(a, b)),
            Node::Internal(i) => i
                .entries
                .iter()
                .map(|e| e.mbb)
                .reduce(|a, b| self.ops.union(a, b)),
        }
    }

    /// Persists the in-memory meta. Called automatically by mutating
    /// operations; exposed for explicit durability points.
    pub fn flush_meta(&self) -> io::Result<()> {
        let meta = *self.meta.lock();
        self.pool.write(PageId(0), meta.encode())
    }

    /// Discards every cached page and re-reads the meta page from disk —
    /// the rollback step after an aborted pager transaction, which may
    /// have left stale staged pages in the cache and a stale meta in
    /// memory.
    pub fn reload_meta(&self) -> io::Result<()> {
        self.pool.flush_cache();
        let meta_page = self.pool.read(PageId(0))?;
        *self.meta.lock() = Meta::decode(&meta_page)?;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Bulk-loading (Appendix B): one bottom-up sequential pass.
    // ------------------------------------------------------------------

    /// Bulk-loads `items`, which must be sorted ascending by key (the
    /// SPB-tree sorts objects by SFC value first). Every node page is
    /// written exactly once, giving the linear construction I/O of Table 6.
    ///
    /// # Panics
    /// Panics if the tree is not empty or the items are unsorted (debug).
    pub fn bulk_load(&self, items: Vec<(u128, u64)>) -> io::Result<()> {
        assert!(self.is_empty(), "bulk_load requires an empty tree");
        debug_assert!(
            items.windows(2).all(|w| w[0].0 <= w[1].0),
            "bulk_load requires sorted input"
        );
        if items.is_empty() {
            return Ok(());
        }

        // Level 0: leaves.
        let n_leaves = items.len().div_ceil(LEAF_CAPACITY);
        let leaf_pages: Vec<PageId> = (0..n_leaves)
            .map(|_| self.pool.allocate())
            .collect::<io::Result<_>>()?;
        let mut level: Vec<ChildEntry> = Vec::with_capacity(n_leaves);
        for (i, chunk) in items.chunks(LEAF_CAPACITY).enumerate() {
            let leaf = LeafNode {
                page: leaf_pages[i],
                keys: chunk.iter().map(|&(k, _)| k).collect(),
                values: chunk.iter().map(|&(_, v)| v).collect(),
                next: leaf_pages.get(i + 1).copied(),
            };
            let mbb = leaf
                .keys
                .iter()
                .map(|&k| self.ops.key_box(k))
                .reduce(|a, b| self.ops.union(a, b))
                .expect("chunk is non-empty");
            self.pool.write(leaf.page, leaf.encode())?;
            level.push(ChildEntry {
                min_key: leaf.keys[0],
                child: leaf.page,
                mbb,
            });
        }

        // Upper levels until a single root remains.
        let mut height = 1u32;
        while level.len() > 1 {
            let mut next_level = Vec::with_capacity(level.len().div_ceil(INTERNAL_CAPACITY));
            for chunk in level.chunks(INTERNAL_CAPACITY) {
                let page = self.pool.allocate()?;
                let node = InternalNode {
                    page,
                    entries: chunk.to_vec(),
                };
                let mbb = chunk
                    .iter()
                    .map(|e| e.mbb)
                    .reduce(|a, b| self.ops.union(a, b))
                    .expect("chunk is non-empty");
                self.pool.write(page, node.encode())?;
                next_level.push(ChildEntry {
                    min_key: chunk[0].min_key,
                    child: page,
                    mbb,
                });
            }
            level = next_level;
            height += 1;
        }

        {
            let mut meta = self.meta.lock();
            meta.root = Some(level[0].child);
            meta.height = height;
            meta.first_leaf = Some(leaf_pages[0]);
            meta.len = items.len() as u64;
        }
        self.flush_meta()
    }

    // ------------------------------------------------------------------
    // Insertion (Appendix C).
    // ------------------------------------------------------------------

    /// Inserts a key/value pair (duplicates allowed).
    pub fn insert(&self, key: u128, value: u64) -> io::Result<()> {
        let (root, height) = {
            let meta = self.meta.lock();
            (meta.root, meta.height)
        };
        match root {
            None => {
                // First entry: create the root leaf.
                let page = self.pool.allocate()?;
                let leaf = LeafNode {
                    page,
                    keys: vec![key],
                    values: vec![value],
                    next: None,
                };
                self.pool.write(page, leaf.encode())?;
                let mut meta = self.meta.lock();
                meta.root = Some(page);
                meta.height = 1;
                meta.first_leaf = Some(page);
                meta.len = 1;
                drop(meta);
                self.flush_meta()
            }
            Some(root) => {
                let up = self.insert_rec(root, height, key, value)?;
                if let InsertUp::Split {
                    left_min,
                    left_mbb,
                    right,
                } = up
                {
                    // Grow a new root.
                    let page = self.pool.allocate()?;
                    let node = InternalNode {
                        page,
                        entries: vec![
                            ChildEntry {
                                min_key: left_min,
                                child: root,
                                mbb: left_mbb,
                            },
                            right,
                        ],
                    };
                    self.pool.write(page, node.encode())?;
                    let mut meta = self.meta.lock();
                    meta.root = Some(page);
                    meta.height += 1;
                }
                self.meta.lock().len += 1;
                self.flush_meta()
            }
        }
    }

    fn insert_rec(&self, page: PageId, level: u32, key: u128, value: u64) -> io::Result<InsertUp> {
        match self.read_node(page)? {
            Node::Leaf(mut leaf) => {
                debug_assert_eq!(level, 1);
                let pos = leaf.keys.partition_point(|&k| k <= key);
                leaf.keys.insert(pos, key);
                leaf.values.insert(pos, value);
                if leaf.len() <= LEAF_CAPACITY {
                    let mbb = self.leaf_mbb(&leaf);
                    self.pool.write(page, leaf.encode())?;
                    Ok(InsertUp::Updated {
                        min_key: leaf.keys[0],
                        mbb,
                    })
                } else {
                    // Split the leaf in half; the new right sibling takes the
                    // upper half and slots into the leaf chain.
                    let mid = leaf.len() / 2;
                    let right_page = self.pool.allocate()?;
                    let right = LeafNode {
                        page: right_page,
                        keys: leaf.keys.split_off(mid),
                        values: leaf.values.split_off(mid),
                        next: leaf.next,
                    };
                    leaf.next = Some(right_page);
                    let left_mbb = self.leaf_mbb(&leaf);
                    let right_mbb = self.leaf_mbb(&right);
                    self.pool.write(page, leaf.encode())?;
                    self.pool.write(right_page, right.encode())?;
                    Ok(InsertUp::Split {
                        left_min: leaf.keys[0],
                        left_mbb,
                        right: ChildEntry {
                            min_key: right.keys[0],
                            child: right_page,
                            mbb: right_mbb,
                        },
                    })
                }
            }
            Node::Internal(mut node) => {
                // Last child whose subtree minimum does not exceed the key.
                let idx = node
                    .entries
                    .partition_point(|e| e.min_key <= key)
                    .saturating_sub(1);
                let child = node.entries[idx].child;
                match self.insert_rec(child, level - 1, key, value)? {
                    InsertUp::Updated { min_key, mbb } => {
                        node.entries[idx].min_key = min_key;
                        node.entries[idx].mbb = mbb;
                        let summary = self.internal_summary(&node);
                        self.pool.write(page, node.encode())?;
                        Ok(InsertUp::Updated {
                            min_key: summary.0,
                            mbb: summary.1,
                        })
                    }
                    InsertUp::Split {
                        left_min,
                        left_mbb,
                        right,
                    } => {
                        node.entries[idx].min_key = left_min;
                        node.entries[idx].mbb = left_mbb;
                        node.entries.insert(idx + 1, right);
                        if node.len() <= INTERNAL_CAPACITY {
                            let summary = self.internal_summary(&node);
                            self.pool.write(page, node.encode())?;
                            Ok(InsertUp::Updated {
                                min_key: summary.0,
                                mbb: summary.1,
                            })
                        } else {
                            let mid = node.len() / 2;
                            let right_page = self.pool.allocate()?;
                            let right_node = InternalNode {
                                page: right_page,
                                entries: node.entries.split_off(mid),
                            };
                            let left_summary = self.internal_summary(&node);
                            let right_summary = self.internal_summary(&right_node);
                            self.pool.write(page, node.encode())?;
                            self.pool.write(right_page, right_node.encode())?;
                            Ok(InsertUp::Split {
                                left_min: left_summary.0,
                                left_mbb: left_summary.1,
                                right: ChildEntry {
                                    min_key: right_summary.0,
                                    child: right_page,
                                    mbb: right_summary.1,
                                },
                            })
                        }
                    }
                }
            }
        }
    }

    fn leaf_mbb(&self, leaf: &LeafNode) -> Mbb {
        leaf.keys
            .iter()
            .map(|&k| self.ops.key_box(k))
            .reduce(|a, b| self.ops.union(a, b))
            .expect("leaf is non-empty here")
    }

    fn internal_summary(&self, node: &InternalNode) -> (u128, Mbb) {
        let min_key = node.entries[0].min_key;
        let mbb = node
            .entries
            .iter()
            .map(|e| e.mbb)
            .reduce(|a, b| self.ops.union(a, b))
            .expect("internal node is non-empty here");
        (min_key, mbb)
    }

    // ------------------------------------------------------------------
    // Deletion (Appendix C).
    // ------------------------------------------------------------------

    /// Deletes one entry matching `(key, value)`. Returns `true` if an
    /// entry was removed. Nodes that drain are unlinked from their parents
    /// (lazy merging; see crate docs).
    pub fn delete(&self, key: u128, value: u64) -> io::Result<bool> {
        let root = match self.meta.lock().root {
            Some(r) => r,
            None => return Ok(false),
        };
        match self.delete_rec(root, key, value)? {
            DeleteUp::NotFound => Ok(false),
            DeleteUp::Updated { now_empty, .. } => {
                {
                    let mut meta = self.meta.lock();
                    meta.len -= 1;
                    if now_empty {
                        meta.root = None;
                        meta.height = 0;
                        meta.first_leaf = None;
                    }
                }
                // Collapse single-child roots so the height stays honest.
                self.shrink_root()?;
                self.flush_meta()?;
                Ok(true)
            }
        }
    }

    fn shrink_root(&self) -> io::Result<()> {
        loop {
            let root = match self.meta.lock().root {
                Some(r) => r,
                None => return Ok(()),
            };
            match self.read_node(root)? {
                Node::Internal(node) if node.len() == 1 => {
                    let mut meta = self.meta.lock();
                    meta.root = Some(node.entries[0].child);
                    meta.height -= 1;
                }
                _ => return Ok(()),
            }
        }
    }

    fn delete_rec(&self, page: PageId, key: u128, value: u64) -> io::Result<DeleteUp> {
        match self.read_node(page)? {
            Node::Leaf(mut leaf) => {
                // Duplicates are contiguous; find the exact (key, value).
                let start = leaf.keys.partition_point(|&k| k < key);
                let mut hit = None;
                for i in start..leaf.keys.len() {
                    if leaf.keys[i] != key {
                        break;
                    }
                    if leaf.values[i] == value {
                        hit = Some(i);
                        break;
                    }
                }
                let Some(i) = hit else {
                    return Ok(DeleteUp::NotFound);
                };
                leaf.keys.remove(i);
                leaf.values.remove(i);
                let now_empty = leaf.is_empty();
                if now_empty {
                    // Keep the page encoded empty; the parent unlinks it.
                    // The leaf chain is repaired by the parent walk below.
                    self.unlink_from_chain(&leaf)?;
                }
                let summary = if now_empty {
                    (key, self.ops.key_box(key)) // ignored by the parent
                } else {
                    (leaf.keys[0], self.leaf_mbb(&leaf))
                };
                self.pool.write(page, leaf.encode())?;
                Ok(DeleteUp::Updated {
                    min_key: summary.0,
                    mbb: summary.1,
                    now_empty,
                })
            }
            Node::Internal(mut node) => {
                // Duplicates may straddle children: try the last child with
                // min_key < key first, then every child with min_key == key.
                let first_ge = node.entries.partition_point(|e| e.min_key < key);
                let mut candidates: Vec<usize> = Vec::new();
                if first_ge > 0 {
                    candidates.push(first_ge - 1);
                }
                let mut j = first_ge;
                while j < node.entries.len() && node.entries[j].min_key == key {
                    candidates.push(j);
                    j += 1;
                }
                for idx in candidates {
                    match self.delete_rec(node.entries[idx].child, key, value)? {
                        DeleteUp::NotFound => continue,
                        DeleteUp::Updated {
                            min_key,
                            mbb,
                            now_empty,
                        } => {
                            if now_empty {
                                node.entries.remove(idx);
                            } else {
                                node.entries[idx].min_key = min_key;
                                node.entries[idx].mbb = mbb;
                            }
                            let child_empty = node.is_empty();
                            let summary = if child_empty {
                                (key, self.ops.key_box(key))
                            } else {
                                self.internal_summary(&node)
                            };
                            self.pool.write(page, node.encode())?;
                            return Ok(DeleteUp::Updated {
                                min_key: summary.0,
                                mbb: summary.1,
                                now_empty: child_empty,
                            });
                        }
                    }
                }
                Ok(DeleteUp::NotFound)
            }
        }
    }

    /// Removes `leaf` from the sibling chain by rewiring its predecessor.
    /// Deletion is rare relative to search in the paper's workloads, so a
    /// linear chain walk is acceptable and avoids back-pointers.
    fn unlink_from_chain(&self, leaf: &LeafNode) -> io::Result<()> {
        let mut meta = self.meta.lock();
        if meta.first_leaf == Some(leaf.page) {
            meta.first_leaf = leaf.next;
            return Ok(());
        }
        let mut cur = meta.first_leaf;
        drop(meta);
        while let Some(id) = cur {
            if let Node::Leaf(mut l) = self.read_node(id)? {
                if l.next == Some(leaf.page) {
                    l.next = leaf.next;
                    self.pool.write(id, l.encode())?;
                    return Ok(());
                }
                cur = l.next;
            } else {
                unreachable!("leaf chain contains only leaves");
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lookups.
    // ------------------------------------------------------------------

    /// All values stored under exactly `key`.
    pub fn search(&self, key: u128) -> io::Result<Vec<u64>> {
        Ok(self
            .scan_range(key, key)?
            .into_iter()
            .map(|(_, v)| v)
            .collect())
    }

    /// All `(key, value)` pairs with `lo ≤ key ≤ hi`, in key order.
    pub fn scan_range(&self, lo: u128, hi: u128) -> io::Result<Vec<(u128, u64)>> {
        self.scan_range_traced(lo, hi, &mut |_| {})
    }

    /// [`BPlusTree::scan_range`], calling `trace` with every node page it
    /// reads — the hook per-query accounting uses to attribute this scan's
    /// page accesses to one query without diffing shared pool counters.
    pub fn scan_range_traced(
        &self,
        lo: u128,
        hi: u128,
        trace: &mut dyn FnMut(PageId),
    ) -> io::Result<Vec<(u128, u64)>> {
        let mut out = Vec::new();
        let Some(root) = self.meta.lock().root else {
            return Ok(out);
        };
        // Descend with a strict-left bias so duplicates of `lo` that
        // straddle node boundaries are not missed.
        let mut page = root;
        loop {
            trace(page);
            match self.read_node(page)? {
                Node::Internal(node) => {
                    let idx = node
                        .entries
                        .partition_point(|e| e.min_key < lo)
                        .saturating_sub(1);
                    page = node.entries[idx].child;
                }
                Node::Leaf(leaf) => {
                    let mut cur = Some(leaf);
                    while let Some(l) = cur {
                        for (&k, &v) in l.keys.iter().zip(&l.values) {
                            if k > hi {
                                return Ok(out);
                            }
                            if k >= lo {
                                out.push((k, v));
                            }
                        }
                        cur = match l.next {
                            Some(n) => {
                                trace(n);
                                match self.read_node(n)? {
                                    Node::Leaf(nl) => Some(nl),
                                    _ => unreachable!("leaf chain contains only leaves"),
                                }
                            }
                            None => None,
                        };
                    }
                    return Ok(out);
                }
            }
        }
    }

    /// Every `(key, value)` pair in key order (walks the leaf chain).
    pub fn scan_all(&self) -> io::Result<Vec<(u128, u64)>> {
        let mut out = Vec::with_capacity(self.len() as usize);
        let mut cur = self.first_leaf();
        while let Some(id) = cur {
            match self.read_node(id)? {
                Node::Leaf(l) => {
                    out.extend(l.keys.iter().copied().zip(l.values.iter().copied()));
                    cur = l.next;
                }
                _ => unreachable!("leaf chain contains only leaves"),
            }
        }
        Ok(out)
    }

    /// MBBs of every node in the tree (used once by the cost model to build
    /// its in-memory mirror for the EPA estimate, eq. 6).
    pub fn all_node_mbbs(&self) -> io::Result<Vec<Mbb>> {
        let mut out = Vec::new();
        let Some(root) = self.meta.lock().root else {
            return Ok(out);
        };
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            let node = self.read_node(id)?;
            if let Some(mbb) = self.node_mbb(&node) {
                out.push(mbb);
            }
            if let Node::Internal(n) = node {
                stack.extend(n.entries.iter().map(|e| e.child));
            }
        }
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Accounting.
    // ------------------------------------------------------------------

    /// The buffer pool (for cache control and PA accounting).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// I/O statistics snapshot.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Number of allocated pages (storage size, Table 6).
    pub fn num_pages(&self) -> u64 {
        self.pool.num_pages()
    }

    /// Number of leaf pages (`|SPB_Q|` in the join EPA model, eq. 8).
    pub fn num_leaf_pages(&self) -> io::Result<u64> {
        let mut n = 0;
        let mut cur = self.first_leaf();
        while let Some(id) = cur {
            match self.read_node(id)? {
                Node::Leaf(l) => {
                    n += 1;
                    cur = l.next;
                }
                _ => unreachable!(),
            }
        }
        Ok(n)
    }

    /// The MBB-ops instance.
    pub fn ops(&self) -> &M {
        &self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_storage::TempDir;

    fn tree(name: &str) -> (TempDir, BPlusTree<PointMbb>) {
        let dir = TempDir::new(name);
        let t = BPlusTree::create(&dir.path().join("t.bpt"), 64, PointMbb).unwrap();
        (dir, t)
    }

    #[test]
    fn empty_tree_behaviour() {
        let (_d, t) = tree("bpt-empty");
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.search(5).unwrap(), Vec::<u64>::new());
        assert!(t.scan_all().unwrap().is_empty());
        assert!(!t.delete(1, 1).unwrap());
    }

    #[test]
    fn bulk_load_and_scan() {
        let (_d, t) = tree("bpt-bulk");
        let items: Vec<(u128, u64)> = (0..10_000u64).map(|i| (i as u128 * 3, i)).collect();
        t.bulk_load(items.clone()).unwrap();
        assert_eq!(t.len(), 10_000);
        assert!(t.height() >= 2);
        assert_eq!(t.scan_all().unwrap(), items);
        assert_eq!(t.search(9).unwrap(), vec![3]);
        assert_eq!(t.search(10).unwrap(), Vec::<u64>::new());
        assert_eq!(
            t.scan_range(30, 45).unwrap(),
            vec![(30, 10), (33, 11), (36, 12), (39, 13), (42, 14), (45, 15)]
        );
    }

    #[test]
    fn bulk_load_writes_each_page_once() {
        let (_d, t) = tree("bpt-bulk-io");
        t.pool().reset_stats();
        let items: Vec<(u128, u64)> = (0..50_000u64).map(|i| (i as u128, i)).collect();
        t.bulk_load(items).unwrap();
        let s = t.io_stats();
        let pages = t.num_pages();
        // allocate + write per page, plus meta page updates.
        assert!(
            s.writes <= 2 * pages + 4,
            "writes = {}, pages = {pages}",
            s.writes
        );
    }

    #[test]
    fn inserts_match_model() {
        let (_d, t) = tree("bpt-insert");
        use std::collections::BTreeMap;
        let mut model: BTreeMap<u128, Vec<u64>> = BTreeMap::new();
        // Deterministic pseudo-random insert order.
        let mut x: u64 = 12345;
        for i in 0..3000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = (x % 500) as u128;
            t.insert(key, i).unwrap();
            model.entry(key).or_default().push(i);
        }
        assert_eq!(t.len(), 3000);
        for (k, vs) in &model {
            let mut got = t.search(*k).unwrap();
            let mut want = vs.clone();
            got.sort_unstable();
            want.sort_unstable();
            assert_eq!(got, want, "key {k}");
        }
        // Full scan is sorted.
        let all = t.scan_all().unwrap();
        assert_eq!(all.len(), 3000);
        assert!(all.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn mixed_insert_then_delete_all() {
        let (_d, t) = tree("bpt-delete");
        for i in 0..2000u64 {
            t.insert((i % 97) as u128, i).unwrap();
        }
        assert_eq!(t.len(), 2000);
        for i in 0..2000u64 {
            assert!(t.delete((i % 97) as u128, i).unwrap(), "i={i}");
        }
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert!(t.scan_all().unwrap().is_empty());
        // Deleting again finds nothing.
        assert!(!t.delete(0, 0).unwrap());
    }

    #[test]
    fn delete_repairs_leaf_chain() {
        let (_d, t) = tree("bpt-chain");
        let items: Vec<(u128, u64)> = (0..1000u64).map(|i| (i as u128, i)).collect();
        t.bulk_load(items).unwrap();
        // Drain the second leaf entirely (keys 170..340).
        for i in 170..340u64 {
            assert!(t.delete(i as u128, i).unwrap());
        }
        let keys: Vec<u128> = t.scan_all().unwrap().into_iter().map(|(k, _)| k).collect();
        let expected: Vec<u128> = (0..170u128).chain(340..1000).collect();
        assert_eq!(keys, expected);
    }

    #[test]
    fn duplicates_straddling_nodes_are_found() {
        let (_d, t) = tree("bpt-dup");
        // 400 duplicates of one key forces them across several leaves.
        let mut items: Vec<(u128, u64)> = (0..400u64).map(|i| (7u128, i)).collect();
        items.extend((0..100u64).map(|i| (100 + i as u128, 1000 + i)));
        items.sort();
        t.bulk_load(items).unwrap();
        assert_eq!(t.search(7).unwrap().len(), 400);
        // Delete a specific duplicate that lives deep in the run.
        assert!(t.delete(7, 399).unwrap());
        assert!(t.delete(7, 0).unwrap());
        assert_eq!(t.search(7).unwrap().len(), 398);
    }

    #[test]
    fn mbbs_cover_subtrees() {
        let (_d, t) = tree("bpt-mbb");
        let items: Vec<(u128, u64)> = (0..5000u64).map(|i| (i as u128 * 2, i)).collect();
        t.bulk_load(items).unwrap();
        // Walk the tree: every internal entry's MBB must cover its child's.
        fn check(t: &BPlusTree<PointMbb>, page: PageId) {
            if let Node::Internal(node) = t.read_node(page).unwrap() {
                for e in &node.entries {
                    let child = t.read_node(e.child).unwrap();
                    let child_mbb = t.node_mbb(&child).unwrap();
                    assert!(
                        e.mbb.lo <= child_mbb.lo && e.mbb.hi >= child_mbb.hi,
                        "parent MBB must cover child"
                    );
                    assert_eq!(e.min_key, child.min_key());
                    check(t, e.child);
                }
            }
        }
        check(&t, t.root_page().unwrap());
    }

    #[test]
    fn mbbs_maintained_under_inserts() {
        let (_d, t) = tree("bpt-mbb-ins");
        let mut x: u64 = 99;
        for i in 0..2000u64 {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            t.insert((x % 10_000) as u128, i).unwrap();
        }
        fn check(t: &BPlusTree<PointMbb>, page: PageId) {
            if let Node::Internal(node) = t.read_node(page).unwrap() {
                for e in &node.entries {
                    let child = t.read_node(e.child).unwrap();
                    let child_mbb = t.node_mbb(&child).unwrap();
                    assert!(e.mbb.lo <= child_mbb.lo && e.mbb.hi >= child_mbb.hi);
                    check(t, e.child);
                }
            }
        }
        check(&t, t.root_page().unwrap());
    }

    #[test]
    fn reopen_preserves_tree() {
        let dir = TempDir::new("bpt-reopen");
        let path = dir.path().join("t.bpt");
        {
            let t = BPlusTree::create(&path, 16, PointMbb).unwrap();
            t.bulk_load((0..500u64).map(|i| (i as u128, i)).collect())
                .unwrap();
        }
        let t = BPlusTree::open(&path, 16, PointMbb).unwrap();
        assert_eq!(t.len(), 500);
        assert_eq!(t.search(250).unwrap(), vec![250]);
        t.insert(1000, 1000).unwrap();
        assert_eq!(t.len(), 501);
    }

    #[test]
    fn leaf_page_count_is_consistent() {
        let (_d, t) = tree("bpt-leafcount");
        t.bulk_load((0..1000u64).map(|i| (i as u128, i)).collect())
            .unwrap();
        let expected = 1000usize.div_ceil(crate::node::LEAF_CAPACITY) as u64;
        assert_eq!(t.num_leaf_pages().unwrap(), expected);
    }

    #[test]
    fn scan_range_edges() {
        let (_d, t) = tree("bpt-range");
        t.bulk_load(vec![(5, 0), (5, 1), (7, 2), (9, 3)]).unwrap();
        assert_eq!(t.scan_range(0, 4).unwrap(), vec![]);
        assert_eq!(t.scan_range(10, 20).unwrap(), vec![]);
        assert_eq!(t.scan_range(5, 5).unwrap(), vec![(5, 0), (5, 1)]);
        assert_eq!(t.scan_range(0, u128::MAX).unwrap().len(), 4);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use spb_storage::TempDir;
    use std::collections::BTreeSet;

    #[derive(Clone, Debug)]
    enum Op {
        Insert(u8, u8),
        Delete(u8, u8),
    }

    fn ops() -> impl Strategy<Value = Vec<Op>> {
        proptest::collection::vec(
            prop_oneof![
                (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Insert(k, v)),
                (any::<u8>(), any::<u8>()).prop_map(|(k, v)| Op::Delete(k, v)),
            ],
            0..120,
        )
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn random_ops_match_btreeset_model(ops in ops()) {
            let dir = TempDir::new("bpt-prop");
            let t = BPlusTree::create(&dir.path().join("t.bpt"), 32, PointMbb).unwrap();
            // Model: multiset of (key, value). Values are made unique per
            // (k, v) by the set semantics — duplicates collapse, so insert
            // only when absent, mirroring with the tree.
            let mut model: BTreeSet<(u128, u64)> = BTreeSet::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        if model.insert((k as u128, v as u64)) {
                            t.insert(k as u128, v as u64).unwrap();
                        }
                    }
                    Op::Delete(k, v) => {
                        let existed = model.remove(&(k as u128, v as u64));
                        prop_assert_eq!(t.delete(k as u128, v as u64).unwrap(), existed);
                    }
                }
                prop_assert_eq!(t.len(), model.len() as u64);
            }
            // Duplicate keys keep insertion order in the tree, so compare
            // after normalising value order within each key.
            let mut got = t.scan_all().unwrap();
            got.sort_unstable();
            let want: Vec<(u128, u64)> = model.into_iter().collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn scan_range_matches_model(keys in proptest::collection::vec(any::<u16>(), 1..300), lo in any::<u16>(), hi in any::<u16>()) {
            let (lo, hi) = (lo.min(hi) as u128, lo.max(hi) as u128);
            let dir = TempDir::new("bpt-prop-range");
            let t = BPlusTree::create(&dir.path().join("t.bpt"), 32, PointMbb).unwrap();
            let mut items: Vec<(u128, u64)> = keys.iter().enumerate().map(|(i, &k)| (k as u128, i as u64)).collect();
            items.sort();
            t.bulk_load(items.clone()).unwrap();
            let got = t.scan_range(lo, hi).unwrap();
            let want: Vec<(u128, u64)> = items.into_iter().filter(|&(k, _)| k >= lo && k <= hi).collect();
            prop_assert_eq!(got, want);
        }
    }
}
