//! `spb-obs`: the workspace's observability layer.
//!
//! BENCH_server.json showed QPS pinned at ~218 from 1 to 8 clients while
//! p99 grew linearly — the service serializes *somewhere* between the
//! accept loop, the admission queue, the tree latch and fsync, and
//! nothing in the codebase could say where. This crate extends the
//! paper's per-query cost discipline (`QueryStats`: compdists / *PA* /
//! fsyncs) into a whole-service metrics layer, so the bottleneck becomes
//! a one-command diagnosis (`spb-cli stats --addr ...`).
//!
//! ## Design
//!
//! * **Dependency-free.** The build environment is offline; like the
//!   rest of the workspace this crate uses std only.
//! * **Always-on, relaxed-ordering fast path.** Every primitive is a
//!   plain atomic updated with `Ordering::Relaxed`: a counter increment
//!   is one `fetch_add`, a histogram record is three. There is no
//!   feature gate and no lock anywhere on the record path, so the
//!   instrumentation can stay enabled in production builds (the `bench
//!   server` experiment measures and asserts the overhead is < 2 % of a
//!   request).
//! * **Process-global registry.** Metrics are registered by name on
//!   first use ([`counter`] / [`gauge`] / [`histogram`] get-or-register)
//!   and the returned `Arc` handle is cached by the instrumented code,
//!   so the registry mutex is touched only at registration and
//!   [`snapshot`] time — never per event.
//! * **Log-bucketed histograms.** [`Histogram`] buckets by
//!   `floor(log2(value))` into 64 fixed buckets: recording is lock-free
//!   and a snapshot reports count / sum / max plus p50 / p90 / p99
//!   estimated from the bucket boundaries (resolution is a factor of
//!   two, which is exactly enough to rank request phases).
//! * **Span tracing.** [`SpanGuard`] (or the [`span!`] macro) times a
//!   region and records its duration into a named histogram on drop;
//!   when the bounded [`trace`] ring is enabled each span also emits a
//!   trace event for `--trace` dumps.
//! * **Centralized clock.** [`clock::now`] / [`clock::nanos_since`] are
//!   the sanctioned timing entry points for hot paths; `spb-lint`'s
//!   `raw-instant` rule forbids bare `Instant::now()` there so timing
//!   stays in one mockable place.
//!
//! ## Metric name catalog
//!
//! See DESIGN.md §11 for the full catalog. The request lifecycle phases
//! are `phase.queue_wait`, `phase.latch_wait`, `phase.traversal`,
//! `phase.buffer_io`, `phase.wal_fsync` and `phase.encode` (all in
//! nanoseconds); `latch_wait` / `buffer_io` / `wal_fsync` are *nested
//! inside* `traversal`, so the additive identity for one request is
//! `queue_wait + traversal + encode ≈ server-side latency`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hist;
pub mod registry;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot};
pub use registry::{counter, gauge, histogram, snapshot, Counter, Gauge, Registry, Snapshot};
pub use trace::TraceEvent;

use std::time::Instant;

/// The sanctioned timing source for hot paths.
///
/// Hot-path code (server, core, storage) takes timestamps through these
/// helpers instead of calling `Instant::now()` directly — `spb-lint`'s
/// `raw-instant` rule enforces it. Centralizing the clock keeps every
/// measurement on one source and leaves a single seam for mocking.
pub mod clock {
    use std::time::Instant;

    /// The current instant (the one sanctioned acquisition point).
    #[inline]
    pub fn now() -> Instant {
        Instant::now()
    }

    /// Nanoseconds elapsed since `start`, saturating at `u64::MAX`.
    #[inline]
    pub fn nanos_since(start: Instant) -> u64 {
        let n = start.elapsed().as_nanos();
        u64::try_from(n).unwrap_or(u64::MAX)
    }
}

/// RAII span: times a region and records its duration (nanoseconds)
/// into `hist` on drop. When the [`trace`] ring is enabled the span
/// also emits a [`TraceEvent`].
pub struct SpanGuard<'a> {
    hist: &'a Histogram,
    name: &'static str,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    /// Starts a span against `hist`, labelled `name` for trace dumps.
    #[inline]
    pub fn enter(hist: &'a Histogram, name: &'static str) -> SpanGuard<'a> {
        SpanGuard {
            hist,
            name,
            start: clock::now(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    #[inline]
    fn drop(&mut self) {
        let nanos = clock::nanos_since(self.start);
        self.hist.record(nanos);
        trace::emit(self.name, nanos);
    }
}

/// Times the enclosing scope into a histogram:
/// `let _span = span!(&phase_hist, "traverse");`
#[macro_export]
macro_rules! span {
    ($hist:expr, $name:expr) => {
        $crate::SpanGuard::enter($hist, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_guard_records_into_histogram() {
        let h = Histogram::new();
        {
            let _span = span!(&h, "test-span");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.max >= 2_000_000, "slept 2ms, recorded {}ns", s.max);
        assert!(s.sum == s.max);
    }

    #[test]
    fn clock_nanos_are_monotone() {
        let t0 = clock::now();
        let a = clock::nanos_since(t0);
        let b = clock::nanos_since(t0);
        assert!(b >= a);
    }
}
