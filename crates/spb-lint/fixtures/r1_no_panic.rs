// Lint fixture: seeded `no-panic` violations. Never compiled — the
// fixtures directory is excluded from workspace scans and analyzed only
// by spb-lint's own tests (under a no-panic-zone pseudo path).
fn decode(buf: &[u8], x: Option<u8>) -> u8 {
    let a = buf[0];
    let b = x.unwrap();
    let c = x.expect("present");
    if a > 10 {
        panic!("bad frame");
    }
    if b == c {
        unreachable!();
    }
    b
}
