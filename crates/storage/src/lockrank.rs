//! Debug-build lock-rank (latch-ordering) assertions.
//!
//! Every ranked lock in the workspace must be acquired in ascending
//! rank order:
//!
//! | Rank | Lock | Declared in |
//! |---|---|---|
//! | 1 | Event-loop completion queue | `spb-server` (`Shared`) |
//! | 2 | Dispatcher work queue | `spb-server` (`DispatchQueue`) |
//! | 3 | Cluster router connection-pool mutex | `spb-cluster` (`Router`) |
//! | 4 | Admission-control counters | `spb-server` (`AdmissionInner`) |
//! | 5 | Replica state lock (serving-tree swap) | `spb-cluster` (`Replica`) |
//! | 10 | SPB-tree structure latch | `spb-core` (`SpbTree::latch`) |
//! | 20 | Buffer-pool shard mutex | `spb-storage` (`cache::Shard`) |
//! | 30 | WAL mutexes (`pending`, `file`) | `spb-storage` (`Wal`) |
//!
//! A query takes the tree latch (shared), then reads pages through
//! buffer-pool shards; an update takes the latch exclusively, stages
//! pages through shards, and commits through the WAL. Acquiring against
//! that order — e.g. taking the tree latch while holding a shard — is a
//! deadlock waiting for the right interleaving. The cluster ranks sit
//! *below* the tree latch: a replica swaps its serving tree (and a
//! router leases a connection) before any tree latch is taken, and a
//! thread inside a tree must never reach back up into cluster state.
//!
//! In debug builds every ranked acquisition registers itself on a
//! thread-local stack and panics the moment a thread acquires a lock
//! whose rank is not strictly above everything it already holds. Two
//! *shared* holds of equal rank are legal (the similarity join holds the
//! tree latches of both joined trees, both shared). In release builds the
//! whole layer compiles to nothing.
//!
//! `spb-lint` rule `lock-order` performs the matching static scan: ranked
//! locks may only be acquired through the helpers that route through this
//! module ([`lock`], [`acquire`], [`acquire_shared`]), and within a
//! function the acquisition order must be ascending.

use std::ops::{Deref, DerefMut};

use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// The declared rank of every ordered lock in the workspace. Bigger rank
/// = acquired later. See the module docs for the table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LockRank {
    /// The event loop's completion queue: workers push finished
    /// responses, the loop drains them (`spb-server`). Lowest rank —
    /// always taken briefly with no other ranked lock held.
    EventCompletions = 1,
    /// The dispatcher's work queue between the event loop and its
    /// workers (`spb-server`).
    DispatchQueue = 2,
    /// A cluster router's per-node connection-pool mutex
    /// (`spb-cluster`).
    RouterConn = 3,
    /// The admission controller's slot/queue counters (`spb-server`).
    AdmissionCounters = 4,
    /// A read replica's serving-state lock, swapped on WAL apply
    /// (`spb-cluster`).
    ReplicaApply = 5,
    /// The SPB-tree structure latch (`spb-core`).
    TreeLatch = 10,
    /// One buffer-pool shard's LRU mutex.
    BufferShard = 20,
    /// The write-ahead log's internal mutexes.
    Wal = 30,
}

impl LockRank {
    /// Human-readable name used in violation messages.
    pub fn name(self) -> &'static str {
        match self {
            LockRank::EventCompletions => "event-loop completion queue",
            LockRank::DispatchQueue => "dispatcher work queue",
            LockRank::AdmissionCounters => "admission counters",
            LockRank::RouterConn => "router connection pool",
            LockRank::ReplicaApply => "replica state lock",
            LockRank::TreeLatch => "tree latch",
            LockRank::BufferShard => "buffer-pool shard",
            LockRank::Wal => "WAL mutex",
        }
    }
}

#[cfg(debug_assertions)]
mod imp {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        /// Ranks this thread currently holds, in acquisition order.
        static HELD: RefCell<Vec<(LockRank, bool)>> = const { RefCell::new(Vec::new()) };
    }

    pub(super) fn check_and_push(rank: LockRank, shared: bool) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            for &(h, h_shared) in held.iter() {
                let legal = h < rank || (h == rank && shared && h_shared);
                assert!(
                    legal,
                    "lock-rank violation: acquiring {} (rank {}) while holding {} (rank {}); \
                     ranked locks must be acquired in ascending order \
                     (router conn \u{227a} replica state \u{227a} tree latch \
                     \u{227a} buffer-pool shard \u{227a} WAL)",
                    rank.name(),
                    rank as u8,
                    h.name(),
                    h as u8,
                );
            }
            held.push((rank, shared));
        });
    }

    pub(super) fn pop(rank: LockRank, shared: bool) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(i) = held.iter().rposition(|&e| e == (rank, shared)) {
                held.remove(i);
            }
        });
    }
}

/// Witness that the current thread has registered a ranked acquisition.
/// Dropping it deregisters. Zero-sized and inert in release builds.
#[must_use = "the rank registration ends when this guard drops"]
#[derive(Debug)]
pub struct HeldRank {
    #[cfg(debug_assertions)]
    rank: LockRank,
    #[cfg(debug_assertions)]
    shared: bool,
}

impl HeldRank {
    fn new(rank: LockRank, shared: bool) -> Self {
        #[cfg(debug_assertions)]
        {
            imp::check_and_push(rank, shared);
            HeldRank { rank, shared }
        }
        #[cfg(not(debug_assertions))]
        {
            let _ = (rank, shared);
            HeldRank {}
        }
    }
}

#[cfg(debug_assertions)]
impl Drop for HeldRank {
    fn drop(&mut self) {
        imp::pop(self.rank, self.shared);
    }
}

/// Registers an exclusive acquisition of `rank`. Panics (debug builds)
/// if the thread already holds a rank at or above it.
pub fn acquire(rank: LockRank) -> HeldRank {
    HeldRank::new(rank, false)
}

/// Registers a shared acquisition of `rank`. Like [`acquire`], but two
/// shared holds of equal rank are allowed (the similarity join holds two
/// tree latches, both shared).
pub fn acquire_shared(rank: LockRank) -> HeldRank {
    HeldRank::new(rank, true)
}

/// A [`MutexGuard`] whose lifetime is tied to its rank registration.
/// The mutex guard drops (releasing the lock) before the rank pops.
#[derive(Debug)]
pub struct RankedMutexGuard<'a, T: ?Sized> {
    guard: MutexGuard<'a, T>,
    _held: HeldRank,
}

impl<T: ?Sized> Deref for RankedMutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RankedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Locks `mutex` at `rank`: the rank check runs *before* blocking on the
/// mutex, so an ordering violation panics instead of deadlocking.
pub fn lock<T: ?Sized>(mutex: &Mutex<T>, rank: LockRank) -> RankedMutexGuard<'_, T> {
    let held = acquire(rank);
    RankedMutexGuard {
        guard: mutex.lock(),
        _held: held,
    }
}

/// An [`RwLockReadGuard`] tied to its (shared) rank registration.
#[derive(Debug)]
pub struct RankedRwReadGuard<'a, T: ?Sized> {
    guard: RwLockReadGuard<'a, T>,
    _held: HeldRank,
}

impl<T: ?Sized> Deref for RankedRwReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

/// An [`RwLockWriteGuard`] tied to its (exclusive) rank registration.
#[derive(Debug)]
pub struct RankedRwWriteGuard<'a, T: ?Sized> {
    guard: RwLockWriteGuard<'a, T>,
    _held: HeldRank,
}

impl<T: ?Sized> Deref for RankedRwWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> DerefMut for RankedRwWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

/// Read-locks `lock` at `rank` as a shared hold (the rank check runs
/// before blocking, like [`lock`]).
pub fn read<T: ?Sized>(lock: &RwLock<T>, rank: LockRank) -> RankedRwReadGuard<'_, T> {
    let held = acquire_shared(rank);
    RankedRwReadGuard {
        guard: lock.read(),
        _held: held,
    }
}

/// Write-locks `lock` at `rank` as an exclusive hold.
pub fn write<T: ?Sized>(lock: &RwLock<T>, rank: LockRank) -> RankedRwWriteGuard<'_, T> {
    let held = acquire(rank);
    RankedRwWriteGuard {
        guard: lock.write(),
        _held: held,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Rank-stack state is thread-local; each test spawns its own thread
    // so tests cannot contaminate each other through a pooled runner.
    fn on_fresh_thread(f: impl FnOnce() + Send + 'static) {
        std::thread::spawn(f).join().unwrap();
    }

    #[test]
    fn ascending_order_is_silent() {
        on_fresh_thread(|| {
            let a = acquire_shared(LockRank::TreeLatch);
            let b = acquire(LockRank::BufferShard);
            let c = acquire(LockRank::Wal);
            drop(c);
            drop(b);
            drop(a);
        });
    }

    #[test]
    fn reacquiring_after_release_is_silent() {
        on_fresh_thread(|| {
            drop(acquire(LockRank::Wal));
            drop(acquire(LockRank::TreeLatch));
            drop(acquire(LockRank::BufferShard));
        });
    }

    #[test]
    fn equal_shared_ranks_are_legal() {
        on_fresh_thread(|| {
            let a = acquire_shared(LockRank::TreeLatch);
            let b = acquire_shared(LockRank::TreeLatch);
            drop(a);
            drop(b);
        });
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-rank violation"))]
    fn descending_order_fires() {
        let _wal = acquire(LockRank::Wal);
        let _shard = acquire(LockRank::BufferShard);
    }

    #[test]
    #[cfg_attr(debug_assertions, should_panic(expected = "lock-rank violation"))]
    fn equal_exclusive_ranks_fire() {
        let _a = acquire(LockRank::BufferShard);
        let _b = acquire(LockRank::BufferShard);
    }

    #[test]
    fn ranked_mutex_guard_derefs() {
        on_fresh_thread(|| {
            let m = Mutex::new(7);
            {
                let mut g = lock(&m, LockRank::Wal);
                *g += 1;
            }
            assert_eq!(*lock(&m, LockRank::Wal), 8);
        });
    }
}
