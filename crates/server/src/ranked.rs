//! Ranked guards for the server's own `std::sync` mutexes.
//!
//! The storage crate's [`spb_storage::lockrank`] layer covers the
//! `parking_lot` locks below the service boundary; the server's locks
//! (completion queue, dispatcher queue, admission counters) are plain
//! [`std::sync::Mutex`]es — this module gives them the same treatment:
//! every acquisition goes through [`lock`], which registers the rank on
//! the debug-build thread-local stack *before* blocking, so an ordering
//! violation panics instead of deadlocking. Poisoning is tolerated
//! everywhere (`PoisonError::into_inner`): a panicking worker must not
//! wedge the event loop.
//!
//! `spb-lint`'s interprocedural `lock-graph` rule recognises the
//! `lock_completions` / `lock_queue` / `lock_counters` helpers built on
//! this module and checks rank ascent across the whole call graph.

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use spb_storage::lockrank::{acquire, HeldRank, LockRank};

/// A [`MutexGuard`] tied to its rank registration. The mutex guard
/// drops (releasing the lock) before the rank pops, mirroring
/// `lockrank::RankedMutexGuard` for `parking_lot`.
#[derive(Debug)]
pub(crate) struct RankedGuard<'a, T: ?Sized> {
    guard: MutexGuard<'a, T>,
    held: HeldRank,
}

impl<T: ?Sized> std::ops::Deref for RankedGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T: ?Sized> std::ops::DerefMut for RankedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<'a, T> RankedGuard<'a, T> {
    /// Waits on `cv` with a timeout, releasing and re-acquiring the
    /// mutex like [`Condvar::wait_timeout`]. The rank registration is
    /// kept across the wait: the thread re-holds the same lock on wake,
    /// and it acquires nothing else while parked.
    pub fn wait_timeout_on(self, cv: &Condvar, dur: Duration) -> RankedGuard<'a, T> {
        let RankedGuard { guard, held } = self;
        let (guard, _timeout) = cv
            .wait_timeout(guard, dur)
            .unwrap_or_else(PoisonError::into_inner);
        RankedGuard { guard, held }
    }
}

/// Locks `mutex` at `rank`, tolerating poison. The rank check runs
/// before blocking so a cycle panics (debug builds) instead of hanging.
pub(crate) fn lock<T: ?Sized>(mutex: &Mutex<T>, rank: LockRank) -> RankedGuard<'_, T> {
    let held = acquire(rank);
    RankedGuard {
        guard: mutex.lock().unwrap_or_else(PoisonError::into_inner),
        held,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_derefs_and_releases() {
        let m = Mutex::new(7u32);
        {
            let mut g = lock(&m, LockRank::DispatchQueue);
            *g += 1;
        }
        assert_eq!(*lock(&m, LockRank::DispatchQueue), 8);
    }

    #[test]
    fn wait_timeout_keeps_the_guard_usable() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let g = lock(&m, LockRank::DispatchQueue);
        let mut g = g.wait_timeout_on(&cv, Duration::from_millis(1));
        *g = 5;
        drop(g);
        assert_eq!(*lock(&m, LockRank::DispatchQueue), 5);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn descending_acquisition_panics_in_debug() {
        let a = Mutex::new(());
        let b = Mutex::new(());
        let _counters = lock(&a, LockRank::AdmissionCounters);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _queue = lock(&b, LockRank::DispatchQueue);
        }));
        assert!(r.is_err(), "rank 2 after rank 4 must panic");
    }
}
