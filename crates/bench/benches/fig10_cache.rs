//! Fig. 10 bench: kNN latency as the page-cache capacity varies.

use criterion::{criterion_group, criterion_main, Criterion};
use spb_bench::experiments::common::build_spb;
use spb_bench::Scale;
use spb_core::{SpbConfig, Traversal};
use spb_metric::dataset;

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let data = dataset::color(scale.color(), scale.seed());
    let (_dir, tree) = build_spb(
        "bench-f10",
        &data,
        dataset::color_metric(),
        &SpbConfig::default(),
    );
    let mut group = c.benchmark_group("fig10_cache");
    group.sample_size(20);
    for cache in [0usize, 8, 32, 128] {
        tree.set_cache_capacity(cache);
        group.bench_function(format!("knn8_color_cache{cache}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                tree.flush_caches();
                let q = &data[i % 100];
                i += 1;
                tree.knn_with(q, 8, Traversal::Incremental).unwrap().0.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
