//! Shard planning: splitting one dataset into `N` contiguous runs of
//! the SFC key space, for `spb-cluster`'s scatter-gather router.
//!
//! The plan reuses the exact bulk-loading pipeline of
//! [`SpbTree::build`](crate::SpbTree::build): select pivots once over
//! the *full* dataset, map every object to its φ vector and SFC key,
//! sort by `(sfc, input index)` — the same tie-break the RAF uses — and
//! cut the sorted run into `N` balanced contiguous chunks, the same
//! chunking the parallel join applies to leaf pages. Because every
//! shard is then bulk-loaded with the *shared* pivot set (see
//! [`SpbTree::build_with_pivots`](crate::SpbTree::build_with_pivots)),
//! each shard's index is byte-compatible with the single-node build
//! restricted to its members: distances, ids and tie orders all match,
//! which is what lets the router merge per-shard answers into results
//! identical to a single node's.
//!
//! Each shard also carries a per-pivot bounding box over its members' φ
//! vectors. For a query `q`, `max_i max(lo_i − φ_i(q), φ_i(q) − hi_i, 0)`
//! lower-bounds `d(q, o)` for every member `o` (the pivot triangle
//! inequality, Lemma 1 of the paper applied per shard), so the router
//! can skip shards that cannot contribute to a radius or a kNN ring.

use spb_metric::{Distance, MetricObject};
use spb_pivots::select_pivots;

use crate::config::SpbConfig;
use crate::mapping::PivotTable;

/// One shard of a [`ShardPlan`]: a contiguous run of the SFC-sorted
/// dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardSpec {
    /// Global input indices of the shard's members, in `(sfc, index)`
    /// order — the order the shard's own RAF will store them in.
    pub members: Vec<u32>,
    /// Smallest SFC key among the members.
    pub key_lo: u128,
    /// Largest SFC key among the members (ranges of consecutive shards
    /// may share a boundary key when ties straddle the cut).
    pub key_hi: u128,
    /// Per-pivot `(min, max)` of the members' φ coordinates; feeds the
    /// router's shard-level lower bound.
    pub mbb: Vec<(f64, f64)>,
}

/// A partition of one dataset into contiguous SFC ranges sharing one
/// pivot set.
#[derive(Clone, Debug)]
pub struct ShardPlan<O> {
    /// The pivots every shard is built with (selected over the full
    /// dataset, exactly as a single-node build would).
    pub pivots: Vec<O>,
    /// Distance computations spent selecting the pivots (reported
    /// separately, like [`BuildStats::pivot_compdists`](crate::BuildStats)).
    pub pivot_compdists: u64,
    /// The shards, in ascending key order. At most `num_shards` — fewer
    /// when the dataset has fewer objects than shards.
    pub shards: Vec<ShardSpec>,
}

impl<O: MetricObject> ShardPlan<O> {
    /// The objects of shard `s`, cloned out of `objects` in member
    /// order, ready to pass to
    /// [`SpbTree::build_with_pivots`](crate::SpbTree::build_with_pivots).
    pub fn shard_objects(&self, s: usize, objects: &[O]) -> Vec<O> {
        self.shards
            .get(s)
            .map(|spec| {
                spec.members
                    .iter()
                    .map(|&i| objects[i as usize].clone())
                    .collect()
            })
            .unwrap_or_default()
    }
}

/// Plans `num_shards` contiguous SFC-range shards over `objects`.
///
/// Pivot selection and object mapping run exactly as in
/// [`SpbTree::build`](crate::SpbTree::build); the sorted `(sfc, index)`
/// run is cut into balanced chunks of `⌈|O| / N⌉` objects. An empty
/// dataset yields an empty plan.
///
/// # Panics
/// Panics when `num_shards` is zero.
pub fn plan_shards<O: MetricObject, D: Distance<O>>(
    objects: &[O],
    metric: &D,
    config: &SpbConfig,
    num_shards: usize,
) -> ShardPlan<O> {
    assert!(num_shards > 0, "a cluster needs at least one shard");
    let counter = spb_metric::DistCounter::new();
    let selection_metric = spb_metric::CountingDistance::with_counter(metric, counter.clone());
    let pivot_idx = select_pivots(
        config.pivot_method,
        objects,
        &selection_metric,
        config.num_pivots,
        &config.pivot_config,
    );
    let pivots: Vec<O> = pivot_idx.iter().map(|&i| objects[i].clone()).collect();
    if objects.is_empty() {
        return ShardPlan {
            pivots,
            pivot_compdists: counter.get(),
            shards: Vec::new(),
        };
    }

    let table = PivotTable::new(pivots.clone(), metric, config.delta);
    let curve = table.curve(config.curve);
    let mut mapped: Vec<(u128, usize, Vec<f64>)> = objects
        .iter()
        .enumerate()
        .map(|(i, o)| {
            let phi = table.phi(metric, o);
            let cell = table.cell_of_phi(&phi);
            (curve.encode(&cell), i, phi)
        })
        .collect();
    mapped.sort_unstable_by_key(|&(sfc, idx, _)| (sfc, idx));

    let chunk = mapped.len().div_ceil(num_shards).max(1);
    let shards = mapped
        .chunks(chunk)
        .map(|run| {
            let members = run.iter().map(|&(_, idx, _)| idx as u32).collect();
            let mut mbb = vec![(f64::INFINITY, f64::NEG_INFINITY); table.num_pivots()];
            for (_, _, phi) in run {
                for (slot, &coord) in mbb.iter_mut().zip(phi) {
                    slot.0 = slot.0.min(coord);
                    slot.1 = slot.1.max(coord);
                }
            }
            ShardSpec {
                members,
                key_lo: run.first().map(|&(sfc, _, _)| sfc).unwrap_or(0),
                key_hi: run.last().map(|&(sfc, _, _)| sfc).unwrap_or(0),
                mbb,
            }
        })
        .collect();
    ShardPlan {
        pivots,
        pivot_compdists: counter.get(),
        shards,
    }
}

/// Lower bound on `d(q, o)` for every object `o` inside a shard whose
/// per-pivot φ bounding box is `mbb`, given the query's own φ vector.
/// This is the per-shard form of the paper's Lemma 1 pruning: for each
/// pivot `p_i`, `|d(q, p_i) − d(o, p_i)| ≤ d(q, o)`, and `d(o, p_i)` is
/// confined to `[lo_i, hi_i]`. The bound is `0` when `q`'s vector falls
/// inside the box, so it never prunes a shard that could contribute —
/// including exact ties on the bound itself, which callers must keep
/// (prune only when the bound *strictly* exceeds the search radius).
pub fn shard_mind(q_phi: &[f64], mbb: &[(f64, f64)]) -> f64 {
    q_phi
        .iter()
        .zip(mbb)
        .map(|(&q, &(lo, hi))| (lo - q).max(q - hi).max(0.0))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_metric::dataset;

    #[test]
    fn plan_covers_every_object_exactly_once_in_sfc_order() {
        let data = dataset::words(500, 11);
        let metric = dataset::words_metric();
        let plan = plan_shards(&data, &metric, &SpbConfig::default(), 4);
        assert_eq!(plan.shards.len(), 4);
        assert!(plan.pivot_compdists > 0);

        let mut seen: Vec<u32> = plan
            .shards
            .iter()
            .flat_map(|s| s.members.iter().copied())
            .collect();
        assert_eq!(seen.len(), data.len());
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), data.len(), "members must partition the input");

        // Shards tile the key space in order.
        for w in plan.shards.windows(2) {
            assert!(w[0].key_lo <= w[0].key_hi);
            assert!(w[0].key_hi <= w[1].key_lo);
        }

        // Balanced to within one chunk.
        let sizes: Vec<usize> = plan.shards.iter().map(|s| s.members.len()).collect();
        let max = sizes.iter().copied().max().unwrap();
        let min = sizes.iter().copied().min().unwrap();
        assert!(max - min <= 125, "sizes {sizes:?} not balanced");
    }

    #[test]
    fn shard_mind_is_a_valid_lower_bound() {
        let data = dataset::words(300, 12);
        let metric = dataset::words_metric();
        let config = SpbConfig::default();
        let plan = plan_shards(&data, &metric, &config, 3);
        let table = PivotTable::new(plan.pivots.clone(), &metric, config.delta);
        for q in data.iter().take(20) {
            let q_phi = table.phi(&metric, q);
            for spec in &plan.shards {
                let bound = shard_mind(&q_phi, &spec.mbb);
                for &m in &spec.members {
                    let d = spb_metric::Distance::distance(&metric, q, &data[m as usize]);
                    assert!(
                        bound <= d + 1e-9,
                        "shard bound {bound} exceeds true distance {d}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiny_datasets_yield_fewer_shards() {
        let data = dataset::words(3, 13);
        let metric = dataset::words_metric();
        let plan = plan_shards(&data, &metric, &SpbConfig::default(), 8);
        assert!(plan.shards.len() <= 3);
        let total: usize = plan.shards.iter().map(|s| s.members.len()).sum();
        assert_eq!(total, 3);
    }
}
