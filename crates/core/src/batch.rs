//! Batch query execution: fan a slice of queries across a worker pool.
//!
//! The read path of the SPB-tree is embarrassingly parallel — RQA/NNA
//! traversals are read-only under the structure latch — so a workload of
//! independent queries should use every core. [`SpbTree::range_batch`]
//! and [`SpbTree::knn_batch`] take the read latch **once** on the calling
//! thread and run the per-query bodies (`range_exec` / `knn_locked`) on
//! a [`WorkerPool`]; updates queue behind the whole batch, exactly as
//! they would behind any single reader.
//!
//! Results and per-query [`QueryStats`] are identical to running the same
//! queries sequentially: each query carries its own
//! [`StatsCollector`](crate::stats::StatsCollector), so nothing is diffed
//! from shared counters and the thread count never changes a number
//! (durations aside).

use std::io;

use spb_accel::QueryMode;
use spb_metric::{Distance, MetricObject};

use crate::exec::WorkerPool;
use crate::knn::Traversal;
use crate::tree::{QueryStats, SpbTree};

/// Per-query output of [`SpbTree::range_batch`]: `(hits, stats)` in input
/// order.
pub type RangeBatch<O> = Vec<(Vec<(u32, O)>, QueryStats)>;

/// Per-query output of [`SpbTree::knn_batch`]: `(neighbours, stats)` in
/// input order.
pub type KnnBatch<O> = Vec<(Vec<(u32, O, f64)>, QueryStats)>;

impl<O: MetricObject, D: Distance<O>> SpbTree<O, D> {
    /// Runs `RQ(q, O, r)` for every `(q, r)` pair on `threads` worker
    /// threads, returning per-query results and stats in input order.
    ///
    /// Deterministic: results and cost metrics are identical to calling
    /// [`SpbTree::range`] per query (under the paper's flush-before-query
    /// protocol), for any thread count.
    pub fn range_batch(&self, queries: &[(O, f64)], threads: usize) -> io::Result<RangeBatch<O>> {
        self.range_batch_mode(queries, QueryMode::Exact, threads)
    }

    /// [`SpbTree::range_batch`] with explicit result semantics. The mode
    /// applies to the whole batch: every query in it shares one
    /// [`QueryMode`], so exact and approximate requests can never be
    /// mixed into one traversal — a caller with both runs two batches.
    pub fn range_batch_mode(
        &self,
        queries: &[(O, f64)],
        mode: QueryMode,
        threads: usize,
    ) -> io::Result<RangeBatch<O>> {
        let contraction = mode.contraction();
        assert!(
            contraction > 0.0 && contraction <= 1.0,
            "contraction must be in (0, 1]"
        );
        let _guard = self.latch_shared();
        let pool = WorkerPool::new(threads);
        pool.map(queries, |_, (q, r)| {
            let mut col = self.collector();
            let hits =
                self.range_exec(q, *r, contraction, spb_accel::Positioning::Auto, &mut col)?;
            Ok((hits, col.finish()))
        })
        .into_iter()
        .collect()
    }

    /// Runs `kNN(q, k)` for every query on `threads` worker threads with
    /// the default incremental traversal. See [`SpbTree::range_batch`]
    /// for the concurrency and determinism contract.
    pub fn knn_batch(&self, queries: &[O], k: usize, threads: usize) -> io::Result<KnnBatch<O>> {
        self.knn_batch_with(queries, k, Traversal::Incremental, threads)
    }

    /// [`SpbTree::knn_batch`] with an explicit traversal strategy.
    pub fn knn_batch_with(
        &self,
        queries: &[O],
        k: usize,
        traversal: Traversal,
        threads: usize,
    ) -> io::Result<KnnBatch<O>> {
        self.knn_batch_mode(queries, k, traversal, QueryMode::Exact, threads)
    }

    /// [`SpbTree::knn_batch_with`] with explicit result semantics; an
    /// approximate mode runs every query with `α = 1/contraction`. One
    /// mode per batch — see [`SpbTree::range_batch_mode`].
    pub fn knn_batch_mode(
        &self,
        queries: &[O],
        k: usize,
        traversal: Traversal,
        mode: QueryMode,
        threads: usize,
    ) -> io::Result<KnnBatch<O>> {
        let alpha = mode.alpha();
        let _guard = self.latch_shared();
        let pool = WorkerPool::new(threads);
        pool.map(queries, |_, q| {
            let mut col = self.collector();
            let nn = self.knn_locked(
                q,
                k,
                traversal,
                alpha,
                spb_accel::Positioning::Auto,
                &mut col,
            )?;
            Ok((nn, col.finish()))
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SpbConfig;
    use crate::tree::SpbTree;
    use spb_metric::dataset;
    use spb_storage::TempDir;

    #[test]
    fn range_batch_matches_sequential_queries() {
        let data = dataset::words(500, 61);
        let dir = TempDir::new("batch-range");
        let tree = SpbTree::build(
            dir.path(),
            &data,
            dataset::words_metric(),
            &SpbConfig::default(),
        )
        .unwrap();
        let queries: Vec<_> = data.iter().take(16).map(|q| (q.clone(), 2.0)).collect();

        // Sequential reference under the paper's protocol.
        let mut want = Vec::new();
        for (q, r) in &queries {
            tree.flush_caches();
            let (hits, stats) = tree.range(q, *r).unwrap();
            let mut ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
            ids.sort_unstable();
            want.push((ids, stats));
        }

        for threads in [1, 4] {
            let got = tree.range_batch(&queries, threads).unwrap();
            assert_eq!(got.len(), want.len());
            for (i, ((hits, stats), (want_ids, want_stats))) in got.iter().zip(&want).enumerate() {
                let mut ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
                ids.sort_unstable();
                assert_eq!(&ids, want_ids, "query {i}, {threads} threads");
                assert_eq!(stats.compdists, want_stats.compdists);
                assert_eq!(stats.page_accesses, want_stats.page_accesses);
                assert_eq!(stats.btree_pa, want_stats.btree_pa);
                assert_eq!(stats.raf_pa, want_stats.raf_pa);
            }
        }
    }

    #[test]
    fn knn_batch_matches_sequential_queries() {
        let data = dataset::color(400, 62);
        let dir = TempDir::new("batch-knn");
        let tree = SpbTree::build(
            dir.path(),
            &data,
            dataset::color_metric(),
            &SpbConfig::default(),
        )
        .unwrap();
        let queries: Vec<_> = data.iter().take(12).cloned().collect();

        let mut want = Vec::new();
        for q in &queries {
            tree.flush_caches();
            let (nn, stats) = tree.knn(q, 5).unwrap();
            let ids: Vec<u32> = nn.iter().map(|&(id, _, _)| id).collect();
            want.push((ids, stats));
        }

        for threads in [1, 4] {
            let got = tree.knn_batch(&queries, 5, threads).unwrap();
            for (i, ((nn, stats), (want_ids, want_stats))) in got.iter().zip(&want).enumerate() {
                let ids: Vec<u32> = nn.iter().map(|&(id, _, _)| id).collect();
                assert_eq!(&ids, want_ids, "query {i}, {threads} threads");
                assert_eq!(stats.compdists, want_stats.compdists);
                assert_eq!(stats.page_accesses, want_stats.page_accesses);
            }
        }
    }

    #[test]
    fn same_query_twice_in_a_batch_reports_identical_stats() {
        // Per-query stats must be independent: the first instance warming
        // the shared cache for the second must not change what either
        // reports.
        let data = dataset::words(400, 63);
        let dir = TempDir::new("batch-dup");
        let tree = SpbTree::build(
            dir.path(),
            &data,
            dataset::words_metric(),
            &SpbConfig::default(),
        )
        .unwrap();
        let q = data[7].clone();
        let queries = vec![(q.clone(), 2.0), (q.clone(), 2.0), (q, 2.0)];
        let got = tree.range_batch(&queries, 3).unwrap();
        for w in got.windows(2) {
            let (a, b) = (&w[0].1, &w[1].1);
            assert_eq!(a.compdists, b.compdists);
            assert_eq!(a.page_accesses, b.page_accesses);
            assert_eq!(a.btree_pa, b.btree_pa);
            assert_eq!(a.raf_pa, b.raf_pa);
            assert_eq!(w[0].0, w[1].0, "identical queries, identical results");
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let data = dataset::words(50, 64);
        let dir = TempDir::new("batch-empty");
        let tree = SpbTree::build(
            dir.path(),
            &data,
            dataset::words_metric(),
            &SpbConfig::default(),
        )
        .unwrap();
        assert!(tree.range_batch(&[], 4).unwrap().is_empty());
        assert!(tree.knn_batch(&[], 3, 4).unwrap().is_empty());
    }
}
