//! Axis-aligned boxes on the pivot-space grid.
//!
//! Both the *mapped range region* `RR(q, r)` of Lemma 1 and the per-node
//! MBBs stored in the B⁺-tree are axis-aligned boxes over grid
//! coordinates. [`GridBox`] implements the geometry the query algorithms
//! need: intersection and containment tests, cell enumeration in SFC order
//! (the `computeSFC` step of Algorithm 1), and the `L∞` minimum distance
//! [`mind_linf`] used by the kNN pruning rule (Lemma 3).

use crate::curve::{Sfc, SfcValue};

/// An axis-aligned box of grid cells with **inclusive** corners
/// `lo ≤ hi` per dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GridBox {
    lo: Vec<u32>,
    hi: Vec<u32>,
}

impl GridBox {
    /// A box from inclusive corners.
    ///
    /// # Panics
    /// Panics if the corners have different dimensionality, are empty, or if
    /// `lo[i] > hi[i]` for some `i`.
    pub fn new(lo: Vec<u32>, hi: Vec<u32>) -> Self {
        assert_eq!(lo.len(), hi.len(), "corner dimensionality mismatch");
        assert!(!lo.is_empty(), "boxes must have at least one dimension");
        assert!(
            lo.iter().zip(&hi).all(|(l, h)| l <= h),
            "lo must not exceed hi: {lo:?} vs {hi:?}"
        );
        GridBox { lo, hi }
    }

    /// The degenerate box covering a single cell.
    pub fn point(p: &[u32]) -> Self {
        GridBox::new(p.to_vec(), p.to_vec())
    }

    /// Low (inclusive) corner.
    pub fn lo(&self) -> &[u32] {
        &self.lo
    }

    /// High (inclusive) corner.
    pub fn hi(&self) -> &[u32] {
        &self.hi
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Grows the box (in place) to cover `p`.
    pub fn extend_to(&mut self, p: &[u32]) {
        debug_assert_eq!(p.len(), self.dims());
        for (i, &c) in p.iter().enumerate() {
            self.lo[i] = self.lo[i].min(c);
            self.hi[i] = self.hi[i].max(c);
        }
    }

    /// True iff `p` lies inside the box.
    pub fn contains_point(&self, p: &[u32]) -> bool {
        debug_assert_eq!(p.len(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((l, h), c)| l <= c && c <= h)
    }

    /// True iff `other` lies entirely inside `self`.
    pub fn contains_box(&self, other: &GridBox) -> bool {
        self.lo.iter().zip(&other.lo).all(|(a, b)| a <= b)
            && self.hi.iter().zip(&other.hi).all(|(a, b)| a >= b)
    }

    /// True iff the boxes share at least one cell.
    pub fn intersects(&self, other: &GridBox) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((al, ah), (bl, bh))| al <= bh && bl <= ah)
    }

    /// The shared cells of two boxes, or `None` when disjoint.
    pub fn intersection(&self, other: &GridBox) -> Option<GridBox> {
        if !self.intersects(other) {
            return None;
        }
        Some(GridBox::new(
            self.lo
                .iter()
                .zip(&other.lo)
                .map(|(a, b)| *a.max(b))
                .collect(),
            self.hi
                .iter()
                .zip(&other.hi)
                .map(|(a, b)| *a.min(b))
                .collect(),
        ))
    }

    /// Number of cells in the box (inclusive corners), saturating at
    /// `u128::MAX` for astronomically large boxes.
    pub fn cell_count(&self) -> u128 {
        let mut n: u128 = 1;
        for (l, h) in self.lo.iter().zip(&self.hi) {
            let side = (*h - *l) as u128 + 1;
            n = n.saturating_mul(side);
        }
        n
    }

    /// Iterates over every cell of the box in row-major order.
    pub fn cells(&self) -> CellIter<'_> {
        CellIter {
            bx: self,
            current: Some(self.lo.clone()),
        }
    }

    /// The SFC values of every cell in the box, sorted ascending — the
    /// `computeSFC(RR ∩ MBB)` step of Algorithm 1 (lines 14–15). The caller
    /// is responsible for only invoking this on small boxes (the algorithm
    /// compares the cell count against the leaf-entry count first).
    pub fn sfc_values_sorted(&self, curve: &Sfc) -> Vec<SfcValue> {
        let mut vals = Vec::new();
        self.sfc_values_sorted_into(curve, &mut vals);
        vals
    }

    /// [`GridBox::sfc_values_sorted`] into a caller-provided buffer, so a
    /// traversal visiting many leaves can reuse one allocation (`out` is
    /// cleared first, then filled and sorted).
    pub fn sfc_values_sorted_into(&self, curve: &Sfc, out: &mut Vec<SfcValue>) {
        debug_assert_eq!(self.dims(), curve.dims());
        out.clear();
        out.extend(self.cells().map(|c| curve.encode(&c)));
        out.sort_unstable();
    }

    /// Clamps a real-valued box to the grid: coordinates below zero become
    /// zero, coordinates above `max_coord` become `max_coord`. Returns
    /// `None` if the box is entirely outside the grid (negative `hi`).
    pub fn from_clamped(lo: &[i64], hi: &[i64], max_coord: u32) -> Option<GridBox> {
        if lo.len() != hi.len() || lo.is_empty() {
            return None;
        }
        if hi.iter().any(|&h| h < 0) || lo.iter().any(|&l| l > max_coord as i64) {
            return None;
        }
        let lo_c: Vec<u32> = lo.iter().map(|&l| l.max(0) as u32).collect();
        let hi_c: Vec<u32> = hi.iter().map(|&h| h.min(max_coord as i64) as u32).collect();
        if lo_c.iter().zip(&hi_c).any(|(l, h)| l > h) {
            return None;
        }
        Some(GridBox::new(lo_c, hi_c))
    }
}

/// Row-major iterator over a box's cells. See [`GridBox::cells`].
pub struct CellIter<'a> {
    bx: &'a GridBox,
    current: Option<Vec<u32>>,
}

impl Iterator for CellIter<'_> {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        let cur = self.current.take()?;
        // Advance like an odometer, last dimension fastest.
        let mut next = cur.clone();
        let mut dim = next.len();
        loop {
            if dim == 0 {
                self.current = None;
                break;
            }
            dim -= 1;
            if next[dim] < self.bx.hi[dim] {
                next[dim] += 1;
                let (tail, len) = (dim + 1, next.len());
                next[tail..].copy_from_slice(&self.bx.lo[tail..len]);
                self.current = Some(next);
                break;
            }
        }
        Some(cur)
    }
}

/// `MIND(p, box)` under `L∞` in grid-cell units: the smallest coordinate
/// distance between `p` and any cell of the box; zero when `p` is inside.
///
/// This is the lower bound of Lemma 3 — `MIND(q, E)` between the mapped
/// query point and a B⁺-tree entry's MBB (converted to metric units by the
/// caller via multiplication with δ).
pub fn mind_linf(p: &[u32], bx: &GridBox) -> u32 {
    debug_assert_eq!(p.len(), bx.dims());
    let mut best = 0u32;
    for ((&c, &l), &h) in p.iter().zip(bx.lo()).zip(bx.hi()) {
        let d = if c < l { l - c } else { c.saturating_sub(h) };
        best = best.max(d);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurveKind;

    #[test]
    fn containment_and_intersection() {
        let a = GridBox::new(vec![0, 0], vec![4, 4]);
        let b = GridBox::new(vec![2, 2], vec![6, 6]);
        let c = GridBox::new(vec![5, 5], vec![6, 6]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(
            a.intersection(&b),
            Some(GridBox::new(vec![2, 2], vec![4, 4]))
        );
        assert_eq!(a.intersection(&c), None);
        assert!(a.contains_point(&[0, 4]));
        assert!(!a.contains_point(&[0, 5]));
        assert!(a.contains_box(&GridBox::new(vec![1, 1], vec![3, 3])));
        assert!(!a.contains_box(&b));
    }

    #[test]
    fn cell_count_and_iteration() {
        let b = GridBox::new(vec![1, 2], vec![2, 4]);
        assert_eq!(b.cell_count(), 6);
        let cells: Vec<Vec<u32>> = b.cells().collect();
        assert_eq!(
            cells,
            vec![
                vec![1, 2],
                vec![1, 3],
                vec![1, 4],
                vec![2, 2],
                vec![2, 3],
                vec![2, 4]
            ]
        );
        let p = GridBox::point(&[7, 7]);
        assert_eq!(p.cell_count(), 1);
        assert_eq!(p.cells().count(), 1);
    }

    #[test]
    fn extend_to_grows_minimally() {
        let mut b = GridBox::point(&[3, 3]);
        b.extend_to(&[1, 5]);
        assert_eq!(b, GridBox::new(vec![1, 3], vec![3, 5]));
        b.extend_to(&[2, 4]); // interior point: no change
        assert_eq!(b, GridBox::new(vec![1, 3], vec![3, 5]));
    }

    #[test]
    fn sfc_values_sorted_matches_bruteforce() {
        for kind in [CurveKind::Hilbert, CurveKind::Z] {
            let c = Sfc::new(kind, 2, 3);
            let b = GridBox::new(vec![1, 2], vec![4, 5]);
            let vals = b.sfc_values_sorted(&c);
            assert_eq!(vals.len() as u128, b.cell_count());
            assert!(vals.windows(2).all(|w| w[0] < w[1]), "strictly ascending");
            // Every returned value decodes into the box.
            for v in &vals {
                assert!(b.contains_point(&c.decode(*v)));
            }
            // And every in-box cell is present.
            for v in 0..c.cell_count() {
                let inside = b.contains_point(&c.decode(v));
                assert_eq!(inside, vals.binary_search(&v).is_ok());
            }
        }
    }

    #[test]
    fn clamping_handles_out_of_range_regions() {
        // RR(q, r) corners can go negative (d(q,p) - r < 0) or exceed the
        // grid; Lemma 1 regions are clamped, not rejected.
        let b = GridBox::from_clamped(&[-3, 2], &[5, 200], 15).unwrap();
        assert_eq!(b, GridBox::new(vec![0, 2], vec![5, 15]));
        assert!(GridBox::from_clamped(&[-5, -5], &[-1, 3], 15).is_none());
        assert!(GridBox::from_clamped(&[20, 0], &[25, 3], 15).is_none());
    }

    #[test]
    fn mind_linf_cases() {
        let b = GridBox::new(vec![2, 2], vec![4, 4]);
        assert_eq!(mind_linf(&[3, 3], &b), 0); // inside
        assert_eq!(mind_linf(&[2, 2], &b), 0); // on the corner
        assert_eq!(mind_linf(&[0, 3], &b), 2); // left of the box
        assert_eq!(mind_linf(&[7, 3], &b), 3); // right of the box
        assert_eq!(mind_linf(&[0, 9], &b), 5); // diagonal: L∞ takes the max
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn boxes(dims: usize, side: u32) -> impl Strategy<Value = GridBox> {
        proptest::collection::vec((0..side, 0..side), dims).prop_map(|cs| {
            let lo: Vec<u32> = cs.iter().map(|&(a, b)| a.min(b)).collect();
            let hi: Vec<u32> = cs.iter().map(|&(a, b)| a.max(b)).collect();
            GridBox::new(lo, hi)
        })
    }

    proptest! {
        #[test]
        fn intersection_is_commutative_and_contained(a in boxes(3, 16), b in boxes(3, 16)) {
            let ab = a.intersection(&b);
            let ba = b.intersection(&a);
            prop_assert_eq!(ab.clone(), ba);
            if let Some(x) = ab {
                prop_assert!(a.contains_box(&x));
                prop_assert!(b.contains_box(&x));
            }
        }

        #[test]
        fn cell_iter_agrees_with_cell_count(b in boxes(3, 6)) {
            prop_assert_eq!(b.cells().count() as u128, b.cell_count());
            for c in b.cells() {
                prop_assert!(b.contains_point(&c));
            }
        }

        #[test]
        fn mind_is_zero_iff_inside(b in boxes(3, 16), p in proptest::collection::vec(0u32..16, 3)) {
            let m = mind_linf(&p, &b);
            prop_assert_eq!(m == 0, b.contains_point(&p));
        }
    }
}
