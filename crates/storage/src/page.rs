//! Fixed-size disk pages with little-endian scalar accessors.

/// Disk page size in bytes. The paper fixes this at 4 KB for every metric
/// access method it evaluates ("All MAMs to index the datasets use a fixed
/// disk page size of 4KB", Section 6).
pub const PAGE_SIZE: usize = 4096;

/// Bytes of the CRC-32 footer at the end of every physical page.
pub const PAGE_CRC_SIZE: usize = 4;

/// Bytes of a page available to node codecs. The last [`PAGE_CRC_SIZE`]
/// bytes hold a CRC-32 over the data area, stamped by the pager on every
/// physical write and verified on every physical read (torn-write and
/// bit-rot detection). Codecs must size their layouts against this, not
/// [`PAGE_SIZE`]; the scalar accessors enforce it.
pub const PAGE_DATA_SIZE: usize = PAGE_SIZE - PAGE_CRC_SIZE;

/// Identifier of a page within one pager file (page number, not a byte
/// offset).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// Byte offset of the page inside its file.
    pub fn byte_offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

/// One in-memory 4 KB page.
///
/// Accessors read and write little-endian scalars at byte offsets; node
/// codecs in the B⁺-tree and baseline indexes are built on these. All
/// accessors panic on out-of-bounds offsets — a codec bug, never a runtime
/// condition.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Self::new()
    }
}

impl Page {
    /// A zeroed page.
    pub fn new() -> Self {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// A page from raw bytes.
    pub fn from_bytes(bytes: [u8; PAGE_SIZE]) -> Self {
        Page {
            data: Box::new(bytes),
        }
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// The raw bytes, mutably.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    /// The data area the CRC footer covers (everything but the footer).
    pub fn data_area(&self) -> &[u8] {
        &self.data[..PAGE_DATA_SIZE]
    }

    /// The CRC-32 stored in the page's footer.
    pub fn footer_crc(&self) -> u32 {
        let mut b = [0u8; PAGE_CRC_SIZE];
        b.copy_from_slice(&self.data[PAGE_DATA_SIZE..]);
        u32::from_le_bytes(b)
    }

    /// Stamps the footer with `crc`.
    pub fn set_footer_crc(&mut self, crc: u32) {
        self.data[PAGE_DATA_SIZE..].copy_from_slice(&crc.to_le_bytes());
    }

    /// Panics unless `[off, off + len)` lies inside the data area — a
    /// codec bug, never a runtime condition.
    #[track_caller]
    fn check_bounds(off: usize, len: usize) {
        assert!(
            off + len <= PAGE_DATA_SIZE,
            "page access [{off}, {}) overlaps the CRC footer (data area is {PAGE_DATA_SIZE} bytes)",
            off + len,
        );
    }

    /// Reads `len` bytes at `off`.
    pub fn read_slice(&self, off: usize, len: usize) -> &[u8] {
        Self::check_bounds(off, len);
        &self.data[off..off + len]
    }

    /// Writes `src` at `off`.
    pub fn write_slice(&mut self, off: usize, src: &[u8]) {
        Self::check_bounds(off, src.len());
        self.data[off..off + src.len()].copy_from_slice(src);
    }

    /// Reads a `u8` at `off`.
    pub fn read_u8(&self, off: usize) -> u8 {
        Self::check_bounds(off, 1);
        self.data[off]
    }

    /// Writes a `u8` at `off`.
    pub fn write_u8(&mut self, off: usize, v: u8) {
        Self::check_bounds(off, 1);
        self.data[off] = v;
    }

    /// Reads a little-endian `u16` at `off`.
    pub fn read_u16(&self, off: usize) -> u16 {
        Self::check_bounds(off, 2);
        let mut b = [0u8; 2];
        b.copy_from_slice(&self.data[off..off + 2]);
        u16::from_le_bytes(b)
    }

    /// Writes a little-endian `u16` at `off`.
    pub fn write_u16(&mut self, off: usize, v: u16) {
        Self::check_bounds(off, 2);
        self.data[off..off + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u32` at `off`.
    pub fn read_u32(&self, off: usize) -> u32 {
        Self::check_bounds(off, 4);
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.data[off..off + 4]);
        u32::from_le_bytes(b)
    }

    /// Writes a little-endian `u32` at `off`.
    pub fn write_u32(&mut self, off: usize, v: u32) {
        Self::check_bounds(off, 4);
        self.data[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u64` at `off`.
    pub fn read_u64(&self, off: usize) -> u64 {
        Self::check_bounds(off, 8);
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[off..off + 8]);
        u64::from_le_bytes(b)
    }

    /// Writes a little-endian `u64` at `off`.
    pub fn write_u64(&mut self, off: usize, v: u64) {
        Self::check_bounds(off, 8);
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u128` at `off` (SFC values, MBB corners).
    pub fn read_u128(&self, off: usize) -> u128 {
        Self::check_bounds(off, 16);
        let mut b = [0u8; 16];
        b.copy_from_slice(&self.data[off..off + 16]);
        u128::from_le_bytes(b)
    }

    /// Writes a little-endian `u128` at `off`.
    pub fn write_u128(&mut self, off: usize, v: u128) {
        Self::check_bounds(off, 16);
        self.data[off..off + 16].copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `f64` at `off` (covering radii, distances).
    pub fn read_f64(&self, off: usize) -> f64 {
        Self::check_bounds(off, 8);
        let mut b = [0u8; 8];
        b.copy_from_slice(&self.data[off..off + 8]);
        f64::from_le_bytes(b)
    }

    /// Writes a little-endian `f64` at `off`.
    pub fn write_f64(&mut self, off: usize, v: f64) {
        Self::check_bounds(off, 8);
        self.data[off..off + 8].copy_from_slice(&v.to_le_bytes());
    }
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page(4096 bytes)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        let mut p = Page::new();
        p.write_u8(0, 0xab);
        p.write_u16(1, 0x1234);
        p.write_u32(3, 0xdead_beef);
        p.write_u64(7, u64::MAX - 1);
        p.write_u128(15, u128::MAX / 3);
        p.write_f64(40, -1.5e300);
        assert_eq!(p.read_u8(0), 0xab);
        assert_eq!(p.read_u16(1), 0x1234);
        assert_eq!(p.read_u32(3), 0xdead_beef);
        assert_eq!(p.read_u64(7), u64::MAX - 1);
        assert_eq!(p.read_u128(15), u128::MAX / 3);
        assert_eq!(p.read_f64(40), -1.5e300);
    }

    #[test]
    fn slices_and_ids() {
        let mut p = Page::new();
        p.write_slice(100, b"hello");
        assert_eq!(p.read_slice(100, 5), b"hello");
        assert_eq!(PageId(3).byte_offset(), 3 * 4096);
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_write_panics() {
        let mut p = Page::new();
        p.write_u32(PAGE_SIZE - 2, 1);
    }

    #[test]
    fn data_area_boundary_is_usable() {
        let mut p = Page::new();
        p.write_u32(PAGE_DATA_SIZE - 4, 0xffff_ffff);
        assert_eq!(p.read_u32(PAGE_DATA_SIZE - 4), 0xffff_ffff);
    }

    #[test]
    #[should_panic(expected = "CRC footer")]
    fn write_into_footer_panics() {
        let mut p = Page::new();
        p.write_u8(PAGE_DATA_SIZE, 0);
    }
}
