//! The in-process cluster harness: plan, build, serve, replicate.
//!
//! [`Cluster::launch`] turns one dataset into a running multi-node
//! deployment on loopback: it plans `N` contiguous SFC-range shards
//! ([`spb_core::plan_shards`]), bulk-loads each shard's own SPB-tree
//! with the shared pivot set, bootstraps `R` read replicas per shard by
//! copying the freshly built directory, and serves every node over TCP
//! (one [`spb_server::serve`] instance each, port 0). `spb-cli cluster`
//! and the end-to-end tests drive clusters through this type; nothing in
//! it is loopback-specific, the routes are plain socket addresses.
//!
//! Writes go to a shard's *primary* ([`Cluster::insert`]), which widens
//! the shard's φ bounding box so routers built afterwards still never
//! prune a shard holding a matching object. Reads go through
//! [`Cluster::router`].

use std::io;
use std::net::SocketAddr;
use std::path::Path;
use std::sync::Arc;

use spb_core::{plan_shards, ShardSpec, SpbConfig, SpbTree};
use spb_metric::{Distance, MetricObject};
use spb_server::wire::WireStats;
use spb_server::{
    schema_path, serve, Client, ClientError, Schema, ServerConfig, ServerHandle, TreeService,
};

use crate::replica::{Replica, ReplicaError, ReplicaService};
use crate::router::{Router, ShardRoute};

/// Cluster topology and per-node sizing.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of shards (contiguous SFC ranges).
    pub shards: usize,
    /// Read replicas per shard.
    pub replicas: usize,
    /// Page-cache capacity per node. Keep the single-node default (32)
    /// when comparing stats against a single-node index: per-query cost
    /// accounting simulates a cold cache of exactly this capacity.
    pub cache_pages: usize,
    /// Lock stripes per node page cache.
    pub cache_shards: usize,
    /// Per-node server limits.
    pub server: ServerConfig,
    /// Index build parameters (shared by every shard).
    pub spb: SpbConfig,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            shards: 2,
            replicas: 0,
            cache_pages: 32,
            cache_shards: 2,
            server: ServerConfig::default(),
            spb: SpbConfig::default(),
        }
    }
}

struct ReplicaNode<O: MetricObject, D: Distance<O> + Clone + 'static> {
    replica: Arc<Replica<O, D>>,
    addr: SocketAddr,
    handle: Option<ServerHandle>,
}

struct ShardNode<O: MetricObject, D: Distance<O> + Clone + 'static> {
    spec: ShardSpec,
    primary_addr: SocketAddr,
    /// `None` once the primary has been killed.
    primary: Option<ServerHandle>,
    replicas: Vec<ReplicaNode<O, D>>,
}

/// A running in-process cluster: one serving primary per shard plus its
/// read replicas. Dropping the cluster shuts every node down.
pub struct Cluster<O: MetricObject, D: Distance<O> + Clone + 'static> {
    pivots: Vec<O>,
    metric: D,
    schema: Schema,
    shards: Vec<ShardNode<O, D>>,
}

impl<O: MetricObject, D: Distance<O> + Clone + 'static> Cluster<O, D> {
    /// Plans, builds and serves a cluster over `objects` under `base`
    /// (`base/shard{i}` per primary, `base/shard{i}-replica{r}` per
    /// replica). Builds are durable: each primary opens with a WAL so
    /// replicas can pull from it.
    pub fn launch(
        base: &Path,
        objects: &[O],
        metric: D,
        schema: Schema,
        cfg: &ClusterConfig,
    ) -> io::Result<Cluster<O, D>> {
        let mut spb = cfg.spb.clone();
        spb.durability = true;
        let plan = plan_shards(objects, &metric, &spb, cfg.shards);

        let mut shards = Vec::with_capacity(plan.shards.len());
        for (i, spec) in plan.shards.iter().enumerate() {
            let dir = base.join(format!("shard{i}"));
            let members = plan.shard_objects(i, objects);
            // Build, then drop: the built tree's WAL is empty, so the
            // drop is a plain close and the directory is a quiescent
            // checkpoint snapshot — exactly what a replica bootstraps
            // from. Objects keep their *global* dataset indices as ids
            // so shard answers tie-break exactly like a single node's.
            let tree = SpbTree::build_with_pivots_ids(
                &dir,
                &members,
                &spec.members,
                metric.clone(),
                plan.pivots.clone(),
                &spb,
                if i == 0 { plan.pivot_compdists } else { 0 },
            )?;
            drop(tree);
            std::fs::write(schema_path(&dir), format!("{}\n", schema.to_line()))?;

            let mut replicas = Vec::with_capacity(cfg.replicas);
            for r in 0..cfg.replicas {
                let rdir = base.join(format!("shard{i}-replica{r}"));
                let replica = Arc::new(Replica::bootstrap(
                    &dir,
                    &rdir,
                    metric.clone(),
                    schema.clone(),
                    cfg.cache_pages,
                    cfg.cache_shards,
                )?);
                let handle = serve(
                    Box::new(ReplicaService::new(Arc::clone(&replica))),
                    "127.0.0.1:0",
                    cfg.server,
                )?;
                replicas.push(ReplicaNode {
                    replica,
                    addr: handle.addr(),
                    handle: Some(handle),
                });
            }

            let tree = SpbTree::open_sharded(
                &dir,
                metric.clone(),
                cfg.cache_pages,
                true,
                cfg.cache_shards,
            )?;
            let service = TreeService::new(tree, schema.clone());
            let handle = serve(Box::new(service), "127.0.0.1:0", cfg.server)?;
            shards.push(ShardNode {
                spec: spec.clone(),
                primary_addr: handle.addr(),
                primary: Some(handle),
                replicas,
            });
        }
        Ok(Cluster {
            pivots: plan.pivots,
            metric,
            schema,
            shards,
        })
    }

    /// Number of shards actually launched (≤ the configured count for
    /// tiny datasets).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The schema every node serves.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The address of shard `shard`'s primary (still meaningful after a
    /// kill: connecting to it is how the router discovers the failure).
    pub fn primary_addr(&self, shard: usize) -> SocketAddr {
        self.shards[shard].primary_addr
    }

    /// The addresses of shard `shard`'s replicas.
    pub fn replica_addrs(&self, shard: usize) -> Vec<SocketAddr> {
        self.shards[shard].replicas.iter().map(|r| r.addr).collect()
    }

    /// A handle on shard `shard`'s replica `r` (tests inspect applied
    /// LSNs through this).
    pub fn replica(&self, shard: usize, r: usize) -> &Arc<Replica<O, D>> {
        &self.shards[shard].replicas[r].replica
    }

    /// A scatter-gather router over the cluster's current routes.
    pub fn router(&self) -> Router<O, D> {
        let routes = self
            .shards
            .iter()
            .map(|s| ShardRoute {
                primary: s.primary_addr,
                replicas: s.replicas.iter().map(|r| r.addr).collect(),
                members: s.spec.members.clone(),
                mbb: s.spec.mbb.clone(),
            })
            .collect();
        Router::new(self.pivots.clone(), self.metric.clone(), routes)
    }

    /// Inserts one object through shard `shard`'s primary, widening the
    /// shard's φ bounding box so routers built *after* this call still
    /// route queries that match the new object to this shard. (The
    /// object's shard-local id is assigned by the primary; cross-shard
    /// global ids only cover the bulk-loaded dataset.)
    pub fn insert(&mut self, shard: usize, o: &O) -> Result<WireStats, ClientError> {
        let mut obj = Vec::new();
        o.encode(&mut obj);
        let mut conn = Client::connect(self.shards[shard].primary_addr)?;
        let stats = conn.insert(&obj, 0)?;
        for (slot, p) in self.shards[shard].spec.mbb.iter_mut().zip(&self.pivots) {
            let d = self.metric.distance(o, p);
            slot.0 = slot.0.min(d);
            slot.1 = slot.1.max(d);
        }
        Ok(stats)
    }

    /// Pulls every replica up to date with its primary. Returns the
    /// total log bytes shipped. Shards whose primary is gone are
    /// skipped (their replicas keep serving at their applied LSN).
    pub fn sync_replicas(&self) -> Result<u64, ReplicaError> {
        let mut shipped = 0;
        for shard in &self.shards {
            if shard.primary.is_none() || shard.replicas.is_empty() {
                continue;
            }
            let mut conn = Client::connect(shard.primary_addr).map_err(ReplicaError::Client)?;
            for node in &shard.replicas {
                loop {
                    let n = node.replica.catch_up(&mut conn)?;
                    shipped += n;
                    if n == 0 {
                        break;
                    }
                }
            }
        }
        Ok(shipped)
    }

    /// Shuts down shard `shard`'s primary (drain, checkpoint, exit) and
    /// forgets its handle. Subsequent reads of this shard only succeed
    /// through a replica.
    pub fn kill_primary(&mut self, shard: usize) -> io::Result<()> {
        match self.shards[shard].primary.take() {
            Some(handle) => handle.join(),
            None => Ok(()),
        }
    }

    /// Shuts the whole cluster down, draining every node.
    pub fn shutdown(mut self) -> io::Result<()> {
        for shard in &mut self.shards {
            if let Some(handle) = shard.primary.take() {
                handle.join()?;
            }
            for node in &mut shard.replicas {
                if let Some(handle) = node.handle.take() {
                    handle.join()?;
                }
            }
        }
        Ok(())
    }
}
