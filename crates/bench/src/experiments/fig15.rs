//! Fig. 15 — accuracy of the range-query cost model vs `r`: actual vs
//! estimated page accesses (eq. 6) and distance computations (eqs. 3–4),
//! with the paper's accuracy measure `1 − |actual − est| / actual`.
//!
//! Paper's shape: average accuracy above 80% across radii.

use spb_core::{CostEstimate, SpbConfig};
use spb_metric::{dataset, Distance, MetricObject};

use crate::experiments::common::{build_spb, range_avg, workload};
use crate::runner::fmt_num;
use crate::{Scale, Table};

const RADII_PCT: [f64; 5] = [2.0, 4.0, 6.0, 8.0, 16.0];

pub(crate) fn model_rows<O: MetricObject, D: Distance<O> + Clone>(
    name: &str,
    data: &[O],
    metric: D,
    scale: Scale,
) {
    let d_plus = metric.max_distance();
    let queries = workload(data, &scale);
    let (_dir, tree) = build_spb(
        &format!("f15-{name}"),
        data,
        metric.clone(),
        &SpbConfig::default(),
    );
    let mut t = Table::new(
        &format!("Fig. 15 ({name}): range query cost model vs r"),
        &[
            "r(%)",
            "PA actual",
            "PA est",
            "PA acc",
            "CD actual",
            "CD est",
            "CD acc",
        ],
    );
    for pct in RADII_PCT {
        let r = d_plus * pct / 100.0;
        let actual = range_avg(&tree, queries, r);
        // Estimates average the per-query model output (φ(q) computed with
        // the raw metric — estimation is free of the compdists budget).
        let mut est_pa = 0.0;
        let mut est_cd = 0.0;
        for q in queries {
            let q_phi = tree.table().phi(tree.metric().inner(), q);
            let est = tree.cost_model().estimate_range(&q_phi, r);
            est_pa += est.page_accesses;
            est_cd += est.compdists;
        }
        est_pa /= queries.len() as f64;
        est_cd /= queries.len() as f64;
        t.row(vec![
            format!("{pct}"),
            fmt_num(actual.pa),
            fmt_num(est_pa),
            format!("{:.2}", CostEstimate::accuracy(actual.pa, est_pa)),
            fmt_num(actual.compdists),
            fmt_num(est_cd),
            format!("{:.2}", CostEstimate::accuracy(actual.compdists, est_cd)),
        ]);
    }
    t.print();
}

/// Reproduces Fig. 15 at the given scale.
pub fn run(scale: Scale) {
    let seed = scale.seed();
    model_rows(
        "Color",
        &dataset::color(scale.color(), seed),
        dataset::color_metric(),
        scale,
    );
    model_rows(
        "Words",
        &dataset::words(scale.words(), seed),
        dataset::words_metric(),
        scale,
    );
}
