//! Cluster scatter-gather sweep — not a paper figure; measures the
//! `spb-cluster` stack end to end: shard planning, per-shard serving,
//! and the router's scatter-gather with MBB pruning, driven by
//! closed-loop clients against 1, 2 and 4 shards of the same dataset.
//!
//! A single shard pays one wire round trip per query, so more shards
//! only win when per-shard work shrinks faster than fan-out cost grows;
//! the table makes that trade visible (QPS, p50/p99, and the router's
//! observed fan-out per query). Correctness is asserted inline: every
//! shard count must answer a probe set byte-identically to the 1-shard
//! deployment.
//!
//! Besides the printed table the run writes `BENCH_cluster.json` into
//! the current directory.

use std::fmt::Write as _;
use std::time::Instant;

use spb_cluster::{Cluster, ClusterConfig, Router};
use spb_metric::{dataset, EditDistance, Word};
use spb_server::Schema;

use crate::experiments::common::workload;
use crate::{Scale, Table};

const SHARDS: [usize; 3] = [1, 2, 4];
const CLIENTS: usize = 4;
const RADIUS: f64 = 2.0;
const K: usize = 10;

/// One probe set: per query, the (id, encoded-object) range hits.
type Probes = Vec<Vec<(u32, Vec<u8>)>>;

struct Point {
    shards: usize,
    range_qps: f64,
    knn_qps: f64,
    p50_us: f64,
    p99_us: f64,
    fanout: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// `CLIENTS` closed-loop threads splitting `total` queries over the
/// shared router; returns (elapsed seconds, sorted latencies in µs).
fn drive(
    router: &Router<Word, EditDistance>,
    queries: &[Word],
    total: usize,
    f: impl Fn(&Router<Word, EditDistance>, &Word) -> usize + Sync,
) -> (f64, Vec<f64>) {
    let per_client = total.div_ceil(CLIENTS);
    let t0 = Instant::now();
    let mut lat = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let f = &f;
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let q = &queries[(c + i * CLIENTS) % queries.len()];
                        let r0 = Instant::now();
                        let _results = f(router, q);
                        lat.push(r0.elapsed().as_secs_f64() * 1e6);
                    }
                    lat
                })
            })
            .collect();
        for h in handles {
            lat.extend(h.join().expect("client thread"));
        }
    });
    let secs = t0.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (secs, lat)
}

/// Runs the shard sweep at the given scale and writes
/// `BENCH_cluster.json`.
pub fn run(scale: Scale) {
    let n = scale.words();
    let data = dataset::words(n, scale.seed());
    let queries = workload(&data, &scale);
    let total = match scale {
        Scale::Smoke => 60,
        _ => 300,
    };
    let max_len = data.iter().map(Word::len).max().unwrap_or(1);

    let mut t = Table::new(
        &format!(
            "Cluster shard sweep (Words, n={n}, {} distinct queries, r={RADIUS}, k={K}, \
             {CLIENTS} clients, {total} reqs/op/point)",
            queries.len()
        ),
        &[
            "Shards",
            "Range QPS",
            "kNN QPS",
            "p50(µs)",
            "p99(µs)",
            "Fan-out",
        ],
    );

    let base = spb_storage::TempDir::new("cluster-bench");
    let mut points = Vec::new();
    let mut reference: Option<Probes> = None;
    for shards in SHARDS {
        let cluster = Cluster::launch(
            &base.path().join(format!("s{shards}")),
            &data,
            EditDistance::new(max_len),
            Schema::Words { max_len },
            &ClusterConfig {
                shards,
                ..ClusterConfig::default()
            },
        )
        .expect("cluster launch");
        let router = cluster.router();

        // Byte-identical across shard counts before timing anything.
        let probes: Probes = queries
            .iter()
            .take(8)
            .map(|q| router.range(q, RADIUS).expect("probe range").0)
            .collect();
        match &reference {
            None => reference = Some(probes),
            Some(want) => assert_eq!(&probes, want, "{shards}-shard answers diverged"),
        }

        // Fan-out (shards actually contacted per query, after MBB
        // pruning) is read back from the router's own histogram: the
        // delta over the timed window divided by its request count.
        let fanout_hist = spb_obs::histogram("cluster.fanout");
        let before = fanout_hist.snapshot();
        let (range_secs, mut lat) = drive(&router, queries, total, |r, q| {
            r.range(q, RADIUS).expect("range").0.len()
        });
        let (knn_secs, knn_lat) = drive(&router, queries, total, |r, q| {
            r.knn(q, K).expect("knn").0.len()
        });
        let after = fanout_hist.snapshot();
        lat.extend(knn_lat);
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let point = Point {
            shards,
            range_qps: total as f64 / range_secs.max(1e-9),
            knn_qps: total as f64 / knn_secs.max(1e-9),
            p50_us: percentile(&lat, 0.50),
            p99_us: percentile(&lat, 0.99),
            fanout: (after.sum - before.sum) as f64 / (after.count - before.count).max(1) as f64,
        };
        t.row(vec![
            point.shards.to_string(),
            format!("{:.1}", point.range_qps),
            format!("{:.1}", point.knn_qps),
            format!("{:.0}", point.p50_us),
            format!("{:.0}", point.p99_us),
            format!("{:.2}", point.fanout),
        ]);
        points.push(point);
        cluster.shutdown().expect("clean shutdown");
    }
    t.print();

    let mut sweep_json = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            sweep_json.push_str(", ");
        }
        let _ = write!(
            sweep_json,
            "{{\"shards\": {}, \"range_qps\": {:.2}, \"knn_qps\": {:.2}, \
             \"p50_us\": {:.1}, \"p99_us\": {:.1}, \"fanout\": {:.2}}}",
            p.shards, p.range_qps, p.knn_qps, p.p50_us, p.p99_us, p.fanout
        );
    }
    sweep_json.push(']');
    let json = format!(
        "{{\n  \"experiment\": \"cluster\",\n  \"scale\": \"{scale:?}\",\n  \
         \"dataset\": {{\"name\": \"words\", \"n\": {n}, \"queries\": {}, \
         \"radius\": {RADIUS}, \"k\": {K}}},\n  \
         \"clients\": {CLIENTS},\n  \"requests_per_point\": {total},\n  \
         \"sweep\": {sweep_json}\n}}\n",
        queries.len(),
    );
    std::fs::write("BENCH_cluster.json", &json).expect("write BENCH_cluster.json");
    eprintln!("[cluster] wrote BENCH_cluster.json");
}
