//! RQA — the Range Query Algorithm (Algorithm 1).
//!
//! A range query `RQ(q, O, r)` maps to the *mapped range region*
//! `RR(q, r)` (Lemma 1): only objects whose mapped vectors fall inside it
//! can qualify. The traversal prunes B⁺-tree subtrees whose MBBs miss
//! `RR`, and per-object verification uses three tiers, cheapest first:
//!
//! 1. **Lemma 1** — discard when `φ(o) ∉ RR(q, r)` (decode the key; no
//!    distance computation, no RAF access);
//! 2. **Lemma 2** — accept without computing `d(q, o)` when some pivot
//!    `pᵢ` has `d(o, pᵢ) ≤ r − d(q, pᵢ)` (the object's whole pivot ball
//!    lies inside the query ball);
//! 3. otherwise fetch the object and compute `d(q, o)`.
//!
//! Leaf processing follows the paper's three-way split (lines 11–23): if
//! the leaf's MBB is contained in `RR` the Lemma-1 check is skipped; if the
//! intersected region holds fewer cells than the leaf has entries, the
//! cells' SFC values are enumerated and merge-joined against the leaf
//! (avoiding per-entry decode); otherwise every entry is checked.

use std::io;

use spb_bptree::Node;
use spb_metric::{Distance, MetricObject};
use spb_sfc::{GridBox, SfcValue};

use crate::stats::StatsCollector;
use crate::tree::{QueryStats, SpbTree};

/// Per-query scratch buffers, hoisted out of the traversal so visiting
/// many leaves reuses two allocations instead of allocating per leaf.
pub(crate) struct RangeScratch {
    /// Decoded grid cell of the entry under verification.
    cell_buf: Vec<u32>,
    /// Sorted SFC values of `RR ∩ MBB` for the cell-merge leaf path.
    svals: Vec<SfcValue>,
}

impl RangeScratch {
    fn new(num_pivots: usize) -> Self {
        RangeScratch {
            cell_buf: vec![0u32; num_pivots],
            svals: Vec::new(),
        }
    }
}

/// Cell budget for the learned enumeration path: when `RR(q, r)` holds at
/// most this many cells, every candidate SFC value is located directly
/// through the PLA model instead of scanning the leaf directory.
const LEARNED_ENUM_CELLS: u128 = 1024;

impl<O: MetricObject, D: Distance<O>> SpbTree<O, D> {
    /// `RQ(q, O, r)`: all indexed objects within distance `r` of `q`
    /// (Definition 2), with the query's cost metrics.
    pub fn range(&self, q: &O, r: f64) -> io::Result<(Vec<(u32, O)>, QueryStats)> {
        self.range_positioned(q, r, spb_accel::Positioning::Auto)
    }

    /// [`range`](SpbTree::range) with an explicit positioning choice
    /// (classic descent vs learned leaf positioning). Both return
    /// byte-identical results; only the traversal cost differs.
    pub fn range_positioned(
        &self,
        q: &O,
        r: f64,
        pos: spb_accel::Positioning,
    ) -> io::Result<(Vec<(u32, O)>, QueryStats)> {
        let _guard = self.latch_shared();
        let mut col = self.collector();
        let result = self.range_exec(q, r, 1.0, pos, &mut col)?;
        Ok((result, col.finish()))
    }

    /// Approximate range query: the pruning radius is contracted to
    /// `r · contraction` (`contraction ∈ (0, 1]`), so objects whose
    /// mapped vectors fall in the shaved-off shell are never inspected.
    /// Perfect precision (every returned object truly is within `r`),
    /// recall ≤ 1. `contraction = 1` degenerates to the exact query.
    pub fn range_approx(
        &self,
        q: &O,
        r: f64,
        contraction: f64,
    ) -> io::Result<(Vec<(u32, O)>, QueryStats)> {
        assert!(
            contraction > 0.0 && contraction <= 1.0,
            "contraction must be in (0, 1]"
        );
        let _guard = self.latch_shared();
        let mut col = self.collector();
        let result = self.range_exec(q, r, contraction, spb_accel::Positioning::Auto, &mut col)?;
        Ok((result, col.finish()))
    }

    /// [`range_approx`](SpbTree::range_approx) plus a recall measurement
    /// against the exact answer (computed with a separate collector, so
    /// the returned stats reflect the approximate query's cost alone).
    /// Sets `QueryStats::recall` and the `accel.recall_permille` gauge.
    pub fn range_approx_measured(
        &self,
        q: &O,
        r: f64,
        contraction: f64,
    ) -> io::Result<(Vec<(u32, O)>, QueryStats)> {
        assert!(
            contraction > 0.0 && contraction <= 1.0,
            "contraction must be in (0, 1]"
        );
        let _guard = self.latch_shared();
        let mut col = self.collector();
        let approx = self.range_exec(q, r, contraction, spb_accel::Positioning::Auto, &mut col)?;
        let mut stats = col.finish();
        let mut exact_col = self.collector();
        let exact = self.range_exec(q, r, 1.0, spb_accel::Positioning::Auto, &mut exact_col)?;
        let exact_ids: Vec<u32> = exact.iter().map(|&(id, _)| id).collect();
        let approx_ids: Vec<u32> = approx.iter().map(|&(id, _)| id).collect();
        let rec = spb_accel::recall(&exact_ids, &approx_ids);
        spb_accel::metrics::record_recall(rec);
        stats.recall = Some(rec);
        Ok((approx, stats))
    }

    /// Auto-tunes the contraction factor to meet `target` recall over a
    /// sample of `(query, radius)` pairs, walking the ladder from most
    /// to least aggressive (the Chávez–Navarro protocol: measure against
    /// exact ground truth, keep the cheapest setting that still hits the
    /// target — the ladder ends at the exact `1.0`).
    pub fn tune_range_contraction(
        &self,
        sample: &[(O, f64)],
        target: f64,
    ) -> io::Result<spb_accel::Tuned> {
        let mut err = None;
        let tuned = spb_accel::tune(&spb_accel::CONTRACTION_LADDER, target, |c| {
            let mut sum = 0.0;
            let mut n = 0u32;
            for (q, r) in sample {
                match self.range_approx_measured(q, *r, c) {
                    Ok((_, stats)) => {
                        sum += stats.recall.unwrap_or(1.0);
                        n += 1;
                    }
                    Err(e) => {
                        err = Some(e);
                        return 0.0;
                    }
                }
            }
            if n == 0 {
                1.0
            } else {
                sum / f64::from(n)
            }
        });
        match err {
            Some(e) => Err(e),
            None => {
                spb_accel::metrics::record_recall(tuned.achieved);
                Ok(tuned)
            }
        }
    }

    /// Shared body of the exact/approximate range variants: the pruning
    /// region is built from the contracted radius, while Lemma 2 and the
    /// final distance check keep the true radius `r` (precision is never
    /// sacrificed, only recall). The caller holds the read latch.
    pub(crate) fn range_exec(
        &self,
        q: &O,
        r: f64,
        contraction: f64,
        pos: spb_accel::Positioning,
        col: &mut StatsCollector,
    ) -> io::Result<Vec<(u32, O)>> {
        let mut result = Vec::new();
        if !self.is_empty() && r >= 0.0 {
            let q_phi = self.phi_traced(col, q);
            let prune_r = if contraction < 1.0 {
                r * contraction
            } else {
                r
            };
            if let Some(rr) = self.table.rr_cells(&q_phi, prune_r) {
                match self.accel_model_for_query(pos) {
                    Some(model) => {
                        self.range_learned(q, &q_phi, r, &rr, &model, col, &mut result)?;
                    }
                    None => self.range_traverse(q, &q_phi, r, &rr, col, &mut result)?,
                }
            }
        }
        Ok(result)
    }

    fn range_traverse(
        &self,
        q: &O,
        q_phi: &[f64],
        r: f64,
        rr: &GridBox,
        col: &mut StatsCollector,
        result: &mut Vec<(u32, O)>,
    ) -> io::Result<()> {
        let Some(root) = self.btree.root_page() else {
            return Ok(());
        };
        let ops = *self.btree.ops();
        // The root has no parent entry carrying its MBB; compute it lazily.
        let root_node = self.read_node_traced(root, col)?;
        let Some(root_mbb) = self.btree.node_mbb(&root_node) else {
            return Ok(());
        };
        let mut stack: Vec<(Node, GridBox)> = vec![(root_node, ops.to_box(root_mbb))];

        let mut scratch = RangeScratch::new(self.table.num_pivots());
        while let Some((node, mbb)) = stack.pop() {
            match node {
                Node::Internal(n) => {
                    for e in &n.entries {
                        let child_box = ops.to_box(e.mbb);
                        if child_box.intersects(rr) {
                            stack.push((self.read_node_traced(e.child, col)?, child_box));
                        }
                    }
                }
                Node::Leaf(leaf) => {
                    self.range_leaf(q, q_phi, r, rr, &leaf, &mbb, col, &mut scratch, result)?;
                }
            }
        }
        Ok(())
    }

    /// The paper's three-way leaf split (Algorithm 1 lines 11–23),
    /// shared by classic descent and the learned directory scan.
    #[allow(clippy::too_many_arguments)]
    fn range_leaf(
        &self,
        q: &O,
        q_phi: &[f64],
        r: f64,
        rr: &GridBox,
        leaf: &spb_bptree::LeafNode,
        mbb: &GridBox,
        col: &mut StatsCollector,
        scratch: &mut RangeScratch,
        result: &mut Vec<(u32, O)>,
    ) -> io::Result<()> {
        if rr.contains_box(mbb) {
            // MBB(N) ⊆ RR: Lemma 1 holds for every entry.
            for (&key, &off) in leaf.keys.iter().zip(&leaf.values) {
                self.verify_rq(
                    q,
                    q_phi,
                    r,
                    rr,
                    key,
                    off,
                    false,
                    col,
                    &mut scratch.cell_buf,
                    result,
                )?;
            }
        } else {
            let inter = mbb.intersection(rr).expect("pushed nodes intersect RR");
            if self.use_cell_merge && inter.cell_count() < leaf.keys.len() as u128 {
                // Enumerate the intersected region's SFC values
                // and merge with the (sorted) leaf entries.
                inter.sfc_values_sorted_into(&self.curve, &mut scratch.svals);
                let svals = &scratch.svals;
                let mut si = 0usize;
                let mut ei = 0usize;
                while si < svals.len() && ei < leaf.keys.len() {
                    if leaf.keys[ei] == svals[si] {
                        self.verify_rq(
                            q,
                            q_phi,
                            r,
                            rr,
                            leaf.keys[ei],
                            leaf.values[ei],
                            false,
                            col,
                            &mut scratch.cell_buf,
                            result,
                        )?;
                        ei += 1; // same SFC value may repeat in the leaf
                    } else if leaf.keys[ei] > svals[si] {
                        si += 1;
                    } else {
                        ei += 1;
                    }
                }
            } else {
                for (&key, &off) in leaf.keys.iter().zip(&leaf.values) {
                    self.verify_rq(
                        q,
                        q_phi,
                        r,
                        rr,
                        key,
                        off,
                        true,
                        col,
                        &mut scratch.cell_buf,
                        result,
                    )?;
                }
            }
        }
        Ok(())
    }

    /// Learned-positioning range traversal: the persisted leaf directory
    /// replaces every inner-node read. Two regimes:
    ///
    /// - **Enumeration** (small `RR`): enumerate `RR`'s SFC values once
    ///   and locate each through the PLA model — only leaves whose key
    ///   range holds a candidate value are read at all (a strictly
    ///   stronger prune than MBB intersection).
    /// - **Directory scan** (large `RR`): walk the in-memory directory,
    ///   reading exactly the leaves whose MBB intersects `RR` — the
    ///   same leaves classic descent reads, minus the internal pages.
    ///
    /// Leaves are visited in descending key order and entries in
    /// ascending order, matching classic right-to-left DFS, so results
    /// are byte-identical to [`range_traverse`](Self::range_traverse).
    /// Any window miss or directory/page mismatch restarts classically.
    #[allow(clippy::too_many_arguments)]
    fn range_learned(
        &self,
        q: &O,
        q_phi: &[f64],
        r: f64,
        rr: &GridBox,
        model: &spb_accel::LeafModel,
        col: &mut StatsCollector,
        result: &mut Vec<(u32, O)>,
    ) -> io::Result<()> {
        let ops = *self.btree.ops();
        let leaves = model.leaves();
        let mut scratch = RangeScratch::new(self.table.num_pivots());
        if self.use_cell_merge && !leaves.is_empty() && rr.cell_count() <= LEARNED_ENUM_CELLS {
            let mut svals: Vec<SfcValue> = Vec::new();
            rr.sfc_values_sorted_into(&self.curve, &mut svals);
            let mut pairs: Vec<(usize, SfcValue)> = Vec::new();
            for &s in &svals {
                match model.locate(s) {
                    spb_accel::Located::Run(first, last) => {
                        for leaf in first..=last {
                            pairs.push((leaf, s));
                        }
                    }
                    spb_accel::Located::Absent => {}
                    spb_accel::Located::Miss => {
                        spb_accel::metrics::model_fallback().incr();
                        result.clear();
                        return self.range_traverse(q, q_phi, r, rr, col, result);
                    }
                }
            }
            // Stable sort: descending leaf order (classic emission
            // order), preserving each leaf's ascending SFC values.
            pairs.sort_by_key(|&(leaf, _)| std::cmp::Reverse(leaf));
            let mut i = 0usize;
            while i < pairs.len() {
                let leaf_idx = pairs[i].0;
                let mut j = i;
                while j < pairs.len() && pairs[j].0 == leaf_idx {
                    j += 1;
                }
                let group = &pairs[i..j];
                i = j;
                let Some(entry) = leaves.get(leaf_idx) else {
                    continue;
                };
                let node = self.read_node_traced(spb_storage::PageId(entry.page), col)?;
                let Node::Leaf(leaf) = node else {
                    spb_accel::metrics::model_fallback().incr();
                    result.clear();
                    return self.range_traverse(q, q_phi, r, rr, col, result);
                };
                let mut si = 0usize;
                let mut ei = 0usize;
                while si < group.len() && ei < leaf.keys.len() {
                    if leaf.keys[ei] == group[si].1 {
                        self.verify_rq(
                            q,
                            q_phi,
                            r,
                            rr,
                            leaf.keys[ei],
                            leaf.values[ei],
                            false,
                            col,
                            &mut scratch.cell_buf,
                            result,
                        )?;
                        ei += 1;
                    } else if leaf.keys[ei] > group[si].1 {
                        si += 1;
                    } else {
                        ei += 1;
                    }
                }
            }
            return Ok(());
        }
        for entry in leaves.iter().rev() {
            let mbb = ops.to_box(spb_bptree::Mbb {
                lo: entry.mbb_lo,
                hi: entry.mbb_hi,
            });
            if !mbb.intersects(rr) {
                continue;
            }
            let node = self.read_node_traced(spb_storage::PageId(entry.page), col)?;
            let Node::Leaf(leaf) = node else {
                spb_accel::metrics::model_fallback().incr();
                result.clear();
                return self.range_traverse(q, q_phi, r, rr, col, result);
            };
            self.range_leaf(q, q_phi, r, rr, &leaf, &mbb, col, &mut scratch, result)?;
        }
        Ok(())
    }

    /// The paper's `VerifyRQ(e, flag)` (Algorithm 1 lines 25–29).
    #[allow(clippy::too_many_arguments)]
    fn verify_rq(
        &self,
        q: &O,
        q_phi: &[f64],
        r: f64,
        rr: &GridBox,
        key: u128,
        offset: u64,
        check_rr: bool,
        col: &mut StatsCollector,
        cell_buf: &mut [u32],
        result: &mut Vec<(u32, O)>,
    ) -> io::Result<()> {
        self.curve.decode_into(key, cell_buf);
        // Lemma 1 (only when the caller could not already guarantee it).
        if check_rr && !rr.contains_point(cell_buf) {
            return Ok(());
        }
        // Lemma 2: accept without a distance computation when the object's
        // ball around some pivot is inside the query ball. The object still
        // has to be fetched — it is part of the result.
        let lemma2 = self.use_lemma2
            && q_phi
                .iter()
                .zip(cell_buf.iter())
                .any(|(&dq, &c)| self.table.cell_dist_hi(c) <= r - dq);
        let (id, o) = self.fetch_traced(offset, col)?;
        if lemma2 {
            result.push((id, o));
            return Ok(());
        }
        if self.dist_traced(col, q, &o) <= r {
            result.push((id, o));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SpbConfig;
    use crate::tree::SpbTree;
    use spb_metric::{dataset, Distance, MetricObject};
    use spb_sfc::CurveKind;
    use spb_storage::TempDir;

    fn brute_range<O: MetricObject, D: Distance<O>>(
        data: &[O],
        metric: &D,
        q: &O,
        r: f64,
    ) -> Vec<u32> {
        let mut ids: Vec<u32> = data
            .iter()
            .enumerate()
            .filter(|(_, o)| metric.distance(q, o) <= r)
            .map(|(i, _)| i as u32)
            .collect();
        ids.sort_unstable();
        ids
    }

    fn check_against_bruteforce<O: MetricObject, D: Distance<O> + Clone>(
        data: Vec<O>,
        metric: D,
        radii: &[f64],
        curve: CurveKind,
    ) {
        let dir = TempDir::new("rqa");
        let cfg = SpbConfig {
            curve,
            ..SpbConfig::default()
        };
        let tree = SpbTree::build(dir.path(), &data, metric.clone(), &cfg).unwrap();
        for (qi, q) in data.iter().take(8).enumerate() {
            for &r in radii {
                let (hits, stats) = tree.range(q, r).unwrap();
                let mut got: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
                got.sort_unstable();
                let want = brute_range(&data, &metric, q, r);
                assert_eq!(got, want, "query {qi}, r={r}");
                assert!(stats.compdists <= data.len() as u64 + 8);
            }
        }
    }

    #[test]
    fn rqa_matches_bruteforce_words() {
        check_against_bruteforce(
            dataset::words(600, 21),
            dataset::words_metric(),
            &[0.0, 1.0, 2.0, 4.0],
            CurveKind::Hilbert,
        );
    }

    #[test]
    fn rqa_matches_bruteforce_color() {
        check_against_bruteforce(
            dataset::color(500, 22),
            dataset::color_metric(),
            &[0.05, 0.15, 0.4],
            CurveKind::Hilbert,
        );
    }

    #[test]
    fn rqa_matches_bruteforce_signature() {
        check_against_bruteforce(
            dataset::signature(400, 23),
            dataset::signature_metric(),
            &[5.0, 15.0, 30.0],
            CurveKind::Hilbert,
        );
    }

    #[test]
    fn rqa_matches_bruteforce_on_z_curve() {
        check_against_bruteforce(
            dataset::words(400, 24),
            dataset::words_metric(),
            &[1.0, 3.0],
            CurveKind::Z,
        );
    }

    #[test]
    fn rqa_matches_bruteforce_dna() {
        check_against_bruteforce(
            dataset::dna(300, 25),
            dataset::dna_metric(),
            &[0.05, 0.2],
            CurveKind::Hilbert,
        );
    }

    #[test]
    fn whole_space_radius_returns_everything() {
        let data = dataset::words(200, 26);
        let dir = TempDir::new("rqa-all");
        let tree = SpbTree::build(
            dir.path(),
            &data,
            dataset::words_metric(),
            &SpbConfig::default(),
        )
        .unwrap();
        let (hits, _) = tree.range(&data[0], 34.0).unwrap();
        assert_eq!(hits.len(), 200);
    }

    #[test]
    fn pivots_prune_distance_computations() {
        // The index exists to compute far fewer distances than a scan.
        let data = dataset::color(2000, 27);
        let dir = TempDir::new("rqa-prune");
        let tree = SpbTree::build(
            dir.path(),
            &data,
            dataset::color_metric(),
            &SpbConfig::default(),
        )
        .unwrap();
        let (_, stats) = tree.range(&data[0], 0.05).unwrap();
        assert!(
            stats.compdists < 400,
            "expected strong pruning, got {} compdists",
            stats.compdists
        );
    }
}
