//! Table 6 — construction costs and storage sizes of the four MAMs on
//! Color / Words / DNA.
//!
//! Paper's shape: the SPB-tree builds with the fewest page accesses and
//! distance computations (its construction maps each object exactly
//! `|P|` times and bulk-loads a B⁺-tree sequentially) and stores the
//! smallest index (SFC compression of the pre-computed distances); the
//! M-Index stores the most (full-resolution keys), the M-tree computes
//! the most distances (recursive clustering).

use spb_metric::{dataset, Distance, MetricObject};

use crate::experiments::common::build_suite;
use crate::runner::fmt_num;
use crate::{Scale, Table};

fn construction_for<O: MetricObject, D: Distance<O> + Clone>(
    name: &str,
    data: &[O],
    metric: D,
    t: &mut Table,
) {
    let suite = build_suite(&format!("t6-{name}"), data, metric);
    let rows: [(&str, spb_core::BuildStats, u64); 4] = [
        (
            "M-tree",
            suite.mtree.build_stats(),
            suite.mtree.storage_bytes(),
        ),
        (
            "OmniR-tree",
            suite.omni.build_stats(),
            suite.omni.storage_bytes(),
        ),
        (
            "M-Index",
            suite.mindex.build_stats(),
            suite.mindex.storage_bytes(),
        ),
        (
            "SPB-tree",
            suite.spb.build_stats(),
            suite.spb.storage_bytes(),
        ),
    ];
    for (mam, s, storage) in rows {
        t.row(vec![
            format!("{name} / {mam}"),
            s.page_accesses.to_string(),
            s.compdists.to_string(),
            format!("{:.3}", s.duration.as_secs_f64()),
            fmt_num(storage as f64 / 1024.0),
        ]);
    }
}

/// Reproduces Table 6 at the given scale.
pub fn run(scale: Scale) {
    let seed = scale.seed();
    let mut t = Table::new(
        "Table 6: construction costs and storage sizes of MAMs",
        &["Dataset / MAM", "PA", "compdists", "Time(s)", "Storage(KB)"],
    );
    construction_for(
        "Color",
        &dataset::color(scale.color(), seed),
        dataset::color_metric(),
        &mut t,
    );
    construction_for(
        "Words",
        &dataset::words(scale.words(), seed),
        dataset::words_metric(),
        &mut t,
    );
    construction_for(
        "DNA",
        &dataset::dna(scale.dna(), seed),
        dataset::dna_metric(),
        &mut t,
    );
    t.print();
}
