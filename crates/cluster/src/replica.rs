//! Log-shipping read replicas.
//!
//! A replica is a full copy of one shard's index directory that stays
//! current by *pulling* the primary's WAL over the `WalShip` wire op and
//! replaying it through the existing recovery path — no new replay code:
//!
//! 1. **Bootstrap**: copy a checkpoint snapshot of the primary's
//!    directory. Opening it runs crash recovery, which redoes whatever
//!    committed transactions the copied log holds and resets the local
//!    log; the replica remembers the primary LSN the snapshot covers.
//! 2. **Catch-up**: ask the primary for `wal[applied_lsn..]`. The reply
//!    is raw CRC-framed records; the replica writes them into its own
//!    (empty) log file and re-opens the tree, so recovery replays them
//!    exactly as it would after a crash. Page records carry full images,
//!    so replay is idempotent and position-independent.
//! 3. **Reset detection**: a checkpoint on the primary truncates its log
//!    to zero, so a `wal_len` *below* the replica's applied LSN means
//!    the shipped stream has a hole — the replica reports
//!    [`ReplicaError::NeedsBootstrap`] instead of guessing.
//!
//! [`ReplicaService`] exposes the replica as a read-only
//! [`IndexService`]: reads delegate to the current serving tree, writes
//! answer a typed error pointing at the primary. The serving tree is
//! swapped under the [`LockRank::ReplicaApply`] lock, which ranks below
//! every storage lock — a reader holds it (shared) across its whole
//! query, so an apply waits for in-flight reads and never yanks pages
//! out from under them.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::RwLock;
use spb_core::SpbTree;
use spb_metric::{Distance, MetricObject};
use spb_server::admission::Deadline;
use spb_server::service::{IndexService, ServiceError, TreeService};
use spb_server::wire::{WireHit, WireNn, WireStats};
use spb_server::{ClientError, Schema};
use spb_storage::lockrank::{self, LockRank, RankedRwReadGuard, RankedRwWriteGuard};
use spb_storage::Wal;

/// The WAL's file name inside an index directory (the same name the
/// tree's recovery path uses).
const WAL_FILE: &str = "spb.wal";

/// Why a replica could not serve or catch up.
#[derive(Debug)]
pub enum ReplicaError {
    /// The primary checkpointed (its log reset below our applied LSN):
    /// the shipped stream has a hole and only a fresh snapshot closes it.
    NeedsBootstrap {
        /// The primary LSN this replica had applied through.
        applied_lsn: u64,
        /// The primary's (shorter) current log length.
        primary_len: u64,
    },
    /// The pull from the primary failed.
    Client(ClientError),
    /// Applying the shipped segment failed locally.
    Io(io::Error),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::NeedsBootstrap {
                applied_lsn,
                primary_len,
            } => write!(
                f,
                "primary log reset to {primary_len} below applied LSN {applied_lsn}; \
                 replica needs a fresh bootstrap"
            ),
            ReplicaError::Client(e) => write!(f, "wal pull failed: {e}"),
            ReplicaError::Io(e) => write!(f, "wal apply failed: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {}

impl From<ClientError> for ReplicaError {
    fn from(e: ClientError) -> Self {
        ReplicaError::Client(e)
    }
}

impl From<io::Error> for ReplicaError {
    fn from(e: io::Error) -> Self {
        ReplicaError::Io(e)
    }
}

struct ReplicaState<O: MetricObject, D: Distance<O>> {
    /// The serving tree; `None` between a failed apply and the next
    /// successful one (reads answer `Internal` rather than stale data).
    service: Option<TreeService<O, D>>,
    /// Primary log offset this replica has applied through.
    applied_lsn: u64,
}

/// One shard's log-shipping read replica.
pub struct Replica<O: MetricObject, D: Distance<O> + Clone> {
    dir: PathBuf,
    metric: D,
    schema: Schema,
    cache_pages: usize,
    cache_shards: usize,
    state: RwLock<ReplicaState<O, D>>,
}

impl<O: MetricObject, D: Distance<O> + Clone> Replica<O, D> {
    /// Bootstraps a replica into `dir` from a checkpoint snapshot of the
    /// primary's index directory. The snapshot must be quiescent (taken
    /// while the primary is not committing — e.g. right after a build or
    /// a checkpoint); its WAL's valid prefix becomes the applied LSN.
    pub fn bootstrap(
        snapshot: &Path,
        dir: &Path,
        metric: D,
        schema: Schema,
        cache_pages: usize,
        cache_shards: usize,
    ) -> io::Result<Self> {
        copy_dir(snapshot, dir)?;
        let wal_path = dir.join(WAL_FILE);
        let applied_lsn = if wal_path.exists() {
            Wal::scan_file(&wal_path)?.valid_len
        } else {
            0
        };
        let replica = Replica {
            dir: dir.to_path_buf(),
            metric,
            schema,
            cache_pages,
            cache_shards,
            state: RwLock::new(ReplicaState {
                service: None,
                applied_lsn,
            }),
        };
        // Opening runs recovery: committed records in the copied log are
        // redone and the local log resets to empty.
        let service = replica.open_service()?;
        replica.state_exclusive().service = Some(service);
        Ok(replica)
    }

    /// Primary log offset this replica has applied through.
    pub fn applied_lsn(&self) -> u64 {
        self.state_shared().applied_lsn
    }

    /// The replica's index directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Pulls and applies everything the primary has past our applied
    /// LSN. Returns the number of log bytes applied (0 = already caught
    /// up). `primary` must be a connection to this shard's primary.
    pub fn catch_up(&self, primary: &mut spb_server::Client) -> Result<u64, ReplicaError> {
        let from = self.state_shared().applied_lsn;
        let (wal_len, frames) = primary.wal_ship(from)?;
        if wal_len < from {
            return Err(ReplicaError::NeedsBootstrap {
                applied_lsn: from,
                primary_len: wal_len,
            });
        }
        if frames.is_empty() {
            return Ok(0);
        }
        self.apply_frames(&frames)
    }

    /// Applies a shipped segment: swap out the serving tree, write the
    /// frames into the (empty) local log, and re-open so recovery
    /// replays them. Holding the state lock exclusively for the whole
    /// swap keeps every reader on a consistent tree.
    fn apply_frames(&self, frames: &[u8]) -> Result<u64, ReplicaError> {
        let mut st = self.state_exclusive();
        // Drop the old tree first: its local WAL is empty (the replica
        // never writes through it), so drop does not checkpoint, it just
        // releases the files.
        st.service = None;
        std::fs::write(self.dir.join(WAL_FILE), frames)?;
        st.service = Some(self.open_service()?);
        st.applied_lsn += frames.len() as u64;
        Ok(frames.len() as u64)
    }

    fn open_service(&self) -> io::Result<TreeService<O, D>> {
        let tree = SpbTree::open_sharded(
            &self.dir,
            self.metric.clone(),
            self.cache_pages,
            true,
            self.cache_shards,
        )?;
        Ok(TreeService::new(tree, self.schema.clone()))
    }

    /// The only way to take the replica state lock shared: ranked at
    /// [`LockRank::ReplicaApply`], below every storage rank, because
    /// readers hold it across whole tree queries.
    fn state_shared(&self) -> RankedRwReadGuard<'_, ReplicaState<O, D>> {
        lockrank::read(&self.state, LockRank::ReplicaApply)
    }

    /// The only way to take the replica state lock exclusively (tree
    /// swap on apply).
    fn state_exclusive(&self) -> RankedRwWriteGuard<'_, ReplicaState<O, D>> {
        lockrank::write(&self.state, LockRank::ReplicaApply)
    }
}

/// Recursively copies `src` into `dst` (creating `dst`).
fn copy_dir(src: &Path, dst: &Path) -> io::Result<()> {
    std::fs::create_dir_all(dst)?;
    for entry in std::fs::read_dir(src)? {
        let entry = entry?;
        let to = dst.join(entry.file_name());
        if entry.file_type()?.is_dir() {
            copy_dir(&entry.path(), &to)?;
        } else {
            std::fs::copy(entry.path(), &to)?;
        }
    }
    Ok(())
}

/// A read-only [`IndexService`] over a [`Replica`] — what a replica
/// server process plugs into `spb_server::serve`.
pub struct ReplicaService<O: MetricObject, D: Distance<O> + Clone> {
    replica: Arc<Replica<O, D>>,
}

impl<O: MetricObject, D: Distance<O> + Clone> ReplicaService<O, D> {
    /// Wraps a replica for serving.
    pub fn new(replica: Arc<Replica<O, D>>) -> Self {
        ReplicaService { replica }
    }

    /// Runs `f` against the current serving tree, holding the state
    /// lock shared so a concurrent apply cannot swap it mid-query.
    fn with_service<T>(
        &self,
        f: impl FnOnce(&TreeService<O, D>) -> Result<T, ServiceError>,
    ) -> Result<T, ServiceError> {
        let st = self.replica.state_shared();
        match &st.service {
            Some(svc) => f(svc),
            None => Err(ServiceError::Internal(
                "replica has no serving tree (last apply failed; re-bootstrap)".to_owned(),
            )),
        }
    }
}

impl<O: MetricObject, D: Distance<O> + Clone> IndexService for ReplicaService<O, D> {
    fn schema(&self) -> &Schema {
        &self.replica.schema
    }

    fn len(&self) -> u64 {
        self.with_service(|s| Ok(s.len())).unwrap_or(0)
    }

    fn storage_bytes(&self) -> u64 {
        self.with_service(|s| Ok(s.storage_bytes())).unwrap_or(0)
    }

    fn num_pivots(&self) -> u32 {
        self.with_service(|s| Ok(s.num_pivots())).unwrap_or(0)
    }

    fn range(&self, obj: &[u8], radius: f64) -> Result<(Vec<WireHit>, WireStats), ServiceError> {
        self.with_service(|s| s.range(obj, radius))
    }

    fn knn(&self, obj: &[u8], k: usize) -> Result<(Vec<WireNn>, WireStats), ServiceError> {
        self.with_service(|s| s.knn(obj, k))
    }

    fn range_approx(
        &self,
        obj: &[u8],
        radius: f64,
        contraction: f64,
    ) -> Result<(Vec<WireHit>, WireStats), ServiceError> {
        self.with_service(|s| s.range_approx(obj, radius, contraction))
    }

    fn knn_approx(
        &self,
        obj: &[u8],
        k: usize,
        alpha: f64,
    ) -> Result<(Vec<WireNn>, WireStats), ServiceError> {
        self.with_service(|s| s.knn_approx(obj, k, alpha))
    }

    fn range_approx_batch(
        &self,
        objs: &[Vec<u8>],
        radius: f64,
        contraction: f64,
        threads: usize,
        deadline: Deadline,
    ) -> Result<Vec<(Vec<WireHit>, WireStats)>, ServiceError> {
        self.with_service(|s| s.range_approx_batch(objs, radius, contraction, threads, deadline))
    }

    fn knn_approx_batch(
        &self,
        objs: &[Vec<u8>],
        k: usize,
        alpha: f64,
        threads: usize,
        deadline: Deadline,
    ) -> Result<Vec<(Vec<WireNn>, WireStats)>, ServiceError> {
        self.with_service(|s| s.knn_approx_batch(objs, k, alpha, threads, deadline))
    }

    fn insert(&self, _obj: &[u8]) -> Result<WireStats, ServiceError> {
        Err(ServiceError::Internal(
            "replica is read-only; write to the shard primary".to_owned(),
        ))
    }

    fn delete(&self, _obj: &[u8]) -> Result<(bool, WireStats), ServiceError> {
        Err(ServiceError::Internal(
            "replica is read-only; write to the shard primary".to_owned(),
        ))
    }

    fn range_batch(
        &self,
        objs: &[Vec<u8>],
        radius: f64,
        threads: usize,
        deadline: Deadline,
    ) -> Result<Vec<(Vec<WireHit>, WireStats)>, ServiceError> {
        self.with_service(|s| s.range_batch(objs, radius, threads, deadline))
    }

    fn knn_batch(
        &self,
        objs: &[Vec<u8>],
        k: usize,
        threads: usize,
        deadline: Deadline,
    ) -> Result<Vec<(Vec<WireNn>, WireStats)>, ServiceError> {
        self.with_service(|s| s.knn_batch(objs, k, threads, deadline))
    }

    fn checkpoint(&self) -> io::Result<()> {
        // Nothing to flush: the replica's local WAL is always empty and
        // its pages are rebuilt from the primary's log.
        Ok(())
    }
}
