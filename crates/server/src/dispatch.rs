//! The batching dispatcher: workers that pull decoded requests off a
//! shared queue, coalesce compatible queries into `range_batch` /
//! `knn_batch` calls, and push completions back to the event loop.
//!
//! ## Why batching helps on the wire path
//!
//! The blocking server executed one request per connection thread, so
//! the PR-3 batch engine never saw more than one query at a time. Here
//! a worker that wins an execution slot first scans the queue it came
//! from: every *identical* deadline-free query attaches to the same
//! execution as a follower (the index runs once, the answer fans out —
//! `SpbTree::range_locked` is deterministic, so followers receive
//! byte-identical hits and stats, the property
//! `same_query_twice_in_a_batch_reports_identical_stats` pins down),
//! and every *distinct* compatible query is promoted into the same
//! `range_batch`/`knn_batch` call if a free slot exists. One index
//! pass amortises latch acquisition and page lookups across the whole
//! batch; the `dispatch_batch_size` histogram records how wide each
//! execution actually was.
//!
//! ## Ordering and accounting
//!
//! Batching never reorders a connection's responses — the event loop
//! sequences responses by request seq — and admission accounting is
//! exact: a follower leaves the queue via
//! [`Admission::collapse_queued`] (served, no slot), a promoted query
//! via [`Admission::try_promote`] (served, one slot), so
//! `served + shed` always equals the number of admitted-or-shed work
//! requests. Requests with a deadline never join a shared batch: their
//! budget is theirs alone, and they execute solo under their own
//! deadline exactly like the blocking server ran them.

use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use spb_storage::lockrank::LockRank;

use crate::admission::{Deadline, Permit};
use crate::ranked::{self, RankedGuard};
use crate::server::{admit_error_response, error_response, Shared};
use crate::service::ServiceError;
use crate::wire::{ErrorCode, Request, Response};

/// Identifies a live connection in the event loop's slab. The `gen`
/// field distinguishes a reused slab slot from the connection a stale
/// completion was addressed to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct ConnId {
    /// Slab index in the event loop.
    pub idx: usize,
    /// Generation of that slot when the work was submitted.
    pub gen: u64,
}

/// One decoded work request travelling from the event loop to a worker.
pub(crate) struct Work {
    /// Destination connection.
    pub conn: ConnId,
    /// Per-connection response sequence number.
    pub seq: u64,
    /// The decoded request (never a control-plane variant).
    pub req: Request,
    /// Deadline pinned at receipt.
    pub deadline: Deadline,
    /// True for `Insert`/`Delete` (a per-connection ordering barrier).
    pub write: bool,
    /// Control-plane work (`WalShip`): bypasses admission — it holds no
    /// queue place and no execution slot — but runs on a worker because
    /// it reads the WAL file, which must not block the event loop.
    pub control: bool,
    /// When the request entered the admission queue (for
    /// `phase.queue_wait`).
    pub enqueued_at: Instant,
}

/// A finished response travelling back to the event loop.
pub(crate) struct Completion {
    /// Destination connection.
    pub conn: ConnId,
    /// Per-connection response sequence number.
    pub seq: u64,
    /// The response to encode.
    pub resp: Response,
    /// Mirrors [`Work::write`]: tells the event loop which inflight
    /// counter to release.
    pub write: bool,
}

/// The `phase.queue_wait` histogram: time an admitted request spent
/// queued before its execution (or collapse) began, in nanoseconds.
pub(crate) fn queue_wait_hist() -> &'static Arc<spb_obs::Histogram> {
    static H: OnceLock<Arc<spb_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| spb_obs::histogram("phase.queue_wait"))
}

/// The `dispatch_batch_size` histogram: how many requests each index
/// execution answered (followers included). Values are counts, not
/// nanoseconds.
pub(crate) fn batch_size_hist() -> &'static Arc<spb_obs::Histogram> {
    static H: OnceLock<Arc<spb_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| spb_obs::histogram("dispatch_batch_size"))
}

/// The FIFO between the event loop (producer) and the dispatcher
/// workers (consumers).
pub(crate) struct DispatchQueue {
    q: Mutex<VecDeque<Work>>,
    cv: Condvar,
}

impl DispatchQueue {
    pub fn new() -> DispatchQueue {
        DispatchQueue {
            q: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
        }
    }

    /// Acquires the queue mutex at rank 2 — the single sanctioned
    /// acquisition point for this lock (`lock-order` bans raw
    /// `.q.lock()` calls; `lock-graph` checks rank ascent through
    /// every caller).
    fn lock_queue(&self) -> RankedGuard<'_, VecDeque<Work>> {
        ranked::lock(&self.q, LockRank::DispatchQueue)
    }

    /// Enqueues work and wakes one worker.
    pub fn push(&self, w: Work) {
        self.lock_queue().push_back(w);
        self.cv.notify_one();
    }

    /// Wakes every worker (shutdown).
    pub fn kick_all(&self) {
        self.cv.notify_all();
    }

    /// Blocks for the next work item. Returns `None` only when the
    /// queue is empty *and* shutdown has been requested, so queued
    /// work is always drained (each drained item still gets a typed
    /// `ShuttingDown` response from the caller).
    pub fn pop_blocking(&self, shutdown: &std::sync::atomic::AtomicBool) -> Option<Work> {
        let mut q = self.lock_queue();
        loop {
            if let Some(w) = q.pop_front() {
                return Some(w);
            }
            if shutdown.load(Ordering::SeqCst) {
                return None;
            }
            // Bounded wait so a missed notify cannot outlive shutdown.
            q = q.wait_timeout_on(&self.cv, Duration::from_millis(50));
        }
    }
}

/// Pushes completions and wakes the event loop once.
pub(crate) fn push_completions(shared: &Shared, comps: Vec<Completion>) {
    if comps.is_empty() {
        return;
    }
    shared.lock_completions().extend(comps);
    shared.waker.wake();
}

/// A dispatcher worker: runs until shutdown *and* an empty queue.
pub(crate) fn worker_loop(shared: &Shared) {
    while let Some(work) = shared.dispatch.pop_blocking(&shared.shutdown) {
        if shared.shutdown.load(Ordering::SeqCst) {
            // Shutdown drain: the request was enqueued but never won a
            // slot; it leaves the system with a typed refusal. Control
            // work never held a queue place.
            if !work.control {
                shared.admission.release_queued();
            }
            let resp = error_response(ErrorCode::ShuttingDown, "server is draining");
            push_completions(
                shared,
                vec![Completion {
                    conn: work.conn,
                    seq: work.seq,
                    resp,
                    write: work.write,
                }],
            );
            continue;
        }
        run_work(shared, work);
    }
}

/// What a coalescable execution shares: query kind and parameters.
/// Exact and approximate queries are distinct kinds by construction —
/// an approximate request can never widen (or ride along with) an
/// exact traversal, whatever its parameters.
#[derive(Clone, Copy)]
enum BatchKind {
    Range { radius: f64 },
    Knn { k: u32 },
    RangeApprox { radius: f64, contraction: f64 },
    KnnApprox { k: u32, alpha: f64 },
}

impl BatchKind {
    /// If `req` can join a batch of this kind, returns its query
    /// object. Only deadline-free queries coalesce: a deadline budget
    /// is per-request and must not gate (or be gated by) strangers.
    /// Float parameters compare bitwise; invalid values (NaN, α < 1)
    /// only ever coalesce with bit-identical peers, and the execution
    /// rejects that whole batch as `Malformed`.
    fn matching_obj<'r>(&self, req: &'r Request) -> Option<&'r [u8]> {
        match (self, req) {
            (
                BatchKind::Range { radius },
                Request::Range {
                    deadline_ms: 0,
                    radius: r2,
                    obj,
                },
            ) if radius.to_bits() == r2.to_bits() => Some(obj),
            (
                BatchKind::Knn { k },
                Request::Knn {
                    deadline_ms: 0,
                    k: k2,
                    obj,
                },
            ) if k == k2 => Some(obj),
            (
                BatchKind::RangeApprox {
                    radius,
                    contraction,
                },
                Request::RangeApprox {
                    deadline_ms: 0,
                    radius: r2,
                    contraction: c2,
                    obj,
                },
            ) if radius.to_bits() == r2.to_bits() && contraction.to_bits() == c2.to_bits() => {
                Some(obj)
            }
            (
                BatchKind::KnnApprox { k, alpha },
                Request::KnnApprox {
                    deadline_ms: 0,
                    k: k2,
                    alpha: a2,
                    obj,
                },
            ) if k == k2 && alpha.to_bits() == a2.to_bits() => Some(obj),
            _ => None,
        }
    }
}

/// Distinct queries one batch will carry at most (followers of each are
/// unbounded — they cost nothing extra).
const MAX_BATCH_UNIQUES: usize = 64;

fn run_work(shared: &Shared, work: Work) {
    let Work {
        conn,
        seq,
        req,
        deadline,
        write,
        control,
        enqueued_at,
    } = work;
    if control {
        // Control-plane work skips admission entirely: replication must
        // keep catching up precisely when the primary is shedding query
        // traffic.
        let resp = execute(req, deadline, shared);
        push_completions(
            shared,
            vec![Completion {
                conn,
                seq,
                resp,
                write,
            }],
        );
        return;
    }
    let permit = match shared.admission.acquire_queued(deadline, &shared.shutdown) {
        Ok(p) => p,
        Err(e) => {
            push_completions(
                shared,
                vec![Completion {
                    conn,
                    seq,
                    resp: admit_error_response(e),
                    write,
                }],
            );
            return;
        }
    };
    queue_wait_hist().record(spb_obs::clock::nanos_since(enqueued_at));
    match req {
        Request::Range {
            deadline_ms: 0,
            radius,
            obj,
        } => run_batch(shared, BatchKind::Range { radius }, obj, conn, seq, permit),
        Request::Knn {
            deadline_ms: 0,
            k,
            obj,
        } => run_batch(shared, BatchKind::Knn { k }, obj, conn, seq, permit),
        Request::RangeApprox {
            deadline_ms: 0,
            radius,
            contraction,
            obj,
        } => run_batch(
            shared,
            BatchKind::RangeApprox {
                radius,
                contraction,
            },
            obj,
            conn,
            seq,
            permit,
        ),
        Request::KnnApprox {
            deadline_ms: 0,
            k,
            alpha,
            obj,
        } => run_batch(
            shared,
            BatchKind::KnnApprox { k, alpha },
            obj,
            conn,
            seq,
            permit,
        ),
        other => {
            let resp = execute(other, deadline, shared);
            batch_size_hist().record(1);
            drop(permit);
            push_completions(
                shared,
                vec![Completion {
                    conn,
                    seq,
                    resp,
                    write,
                }],
            );
        }
    }
}

/// Executes a coalescable query, widening it with every compatible
/// queued request first. `subs[i]` lists the `(conn, seq)` subscribers
/// of `objs[i]`; the leader holds `permits[0]`.
fn run_batch(
    shared: &Shared,
    kind: BatchKind,
    leader_obj: Vec<u8>,
    conn: ConnId,
    seq: u64,
    permit: Permit,
) {
    let mut objs: Vec<Vec<u8>> = vec![leader_obj];
    let mut subs: Vec<Vec<(ConnId, u64)>> = vec![vec![(conn, seq)]];
    let mut permits: Vec<Permit> = vec![permit];

    {
        // The coalescing scan extracts compatible work atomically with
        // its admission updates: queue (rank 2) held across the counter
        // (rank 4) acquisitions inside `try_promote`/`collapse_queued`
        // — an ascending chain the `lock-graph` rule verifies.
        let mut q = shared.dispatch.lock_queue();
        let mut i = 0;
        while i < q.len() {
            let action = match q.get(i).and_then(|w| kind.matching_obj(&w.req)) {
                None => None,
                Some(obj) => match objs.iter().position(|o| o == obj) {
                    // An identical in-flight query: answer it from the
                    // same execution, no extra slot needed.
                    Some(slot) => Some((slot, None)),
                    // A distinct compatible query: promote it into the
                    // batch if admission has a free execution slot.
                    None if objs.len() < MAX_BATCH_UNIQUES => shared
                        .admission
                        .try_promote()
                        .map(|p| (objs.len(), Some(p))),
                    None => None,
                },
            };
            let Some((slot, promoted)) = action else {
                i += 1;
                continue;
            };
            let Some(w) = q.remove(i) else { break };
            queue_wait_hist().record(spb_obs::clock::nanos_since(w.enqueued_at));
            match promoted {
                Some(p) => {
                    permits.push(p);
                    if let Some(obj) = kind.matching_obj(&w.req) {
                        objs.push(obj.to_vec());
                    }
                    subs.push(vec![(w.conn, w.seq)]);
                }
                None => {
                    shared.admission.collapse_queued();
                    if let Some(s) = subs.get_mut(slot) {
                        s.push((w.conn, w.seq));
                    }
                }
            }
        }
    }

    let total: usize = subs.iter().map(Vec::len).sum();
    batch_size_hist().record(total as u64);

    let svc = shared.service.as_ref();
    let threads = shared.cfg.worker_threads;
    let mut comps: Vec<Completion> = Vec::with_capacity(total);
    let rows = match kind {
        BatchKind::Range { radius } => svc
            .range_batch(&objs, radius, threads, Deadline::none())
            .map(|rows| {
                rows.into_iter()
                    .map(|(hits, stats)| Response::Range { hits, stats })
                    .collect::<Vec<_>>()
            }),
        BatchKind::Knn { k } => svc
            .knn_batch(&objs, k as usize, threads, Deadline::none())
            .map(|rows| {
                rows.into_iter()
                    .map(|(hits, stats)| Response::Knn { hits, stats })
                    .collect::<Vec<_>>()
            }),
        BatchKind::RangeApprox {
            radius,
            contraction,
        } => svc
            .range_approx_batch(&objs, radius, contraction, threads, Deadline::none())
            .map(|rows| {
                rows.into_iter()
                    .map(|(hits, stats)| Response::Range { hits, stats })
                    .collect::<Vec<_>>()
            }),
        BatchKind::KnnApprox { k, alpha } => svc
            .knn_approx_batch(&objs, k as usize, alpha, threads, Deadline::none())
            .map(|rows| {
                rows.into_iter()
                    .map(|(hits, stats)| Response::Knn { hits, stats })
                    .collect::<Vec<_>>()
            }),
    };
    match rows {
        Ok(rows) => {
            for (resp, fans) in rows.into_iter().zip(subs) {
                for (c, s) in fans {
                    comps.push(Completion {
                        conn: c,
                        seq: s,
                        resp: resp.clone(),
                        write: false,
                    });
                }
            }
        }
        Err(_) => {
            // A batch fails as a unit (e.g. one undecodable object), but
            // each request deserves its own verdict — re-run the uniques
            // solo so one bad query cannot poison its batchmates. Rare
            // path: a retry costs one extra traversal per unique.
            for (obj, fans) in objs.into_iter().zip(subs) {
                let resp = match kind {
                    BatchKind::Range { radius } => svc
                        .range(&obj, radius)
                        .map(|(hits, stats)| Response::Range { hits, stats }),
                    BatchKind::Knn { k } => svc
                        .knn(&obj, k as usize)
                        .map(|(hits, stats)| Response::Knn { hits, stats }),
                    BatchKind::RangeApprox {
                        radius,
                        contraction,
                    } => svc
                        .range_approx(&obj, radius, contraction)
                        .map(|(hits, stats)| Response::Range { hits, stats }),
                    BatchKind::KnnApprox { k, alpha } => svc
                        .knn_approx(&obj, k as usize, alpha)
                        .map(|(hits, stats)| Response::Knn { hits, stats }),
                };
                let resp = resp.unwrap_or_else(|e| service_error_response(e, shared));
                for (c, s) in fans {
                    comps.push(Completion {
                        conn: c,
                        seq: s,
                        resp: resp.clone(),
                        write: false,
                    });
                }
            }
        }
    }
    drop(permits);
    push_completions(shared, comps);
}

fn service_error_response(e: ServiceError, shared: &Shared) -> Response {
    match e {
        ServiceError::Malformed(m) => error_response(ErrorCode::Malformed, m),
        ServiceError::DeadlineExceeded => {
            shared.admission.record_deadline_miss();
            error_response(
                ErrorCode::DeadlineExceeded,
                "deadline expired mid-execution",
            )
        }
        ServiceError::Internal(m) => error_response(ErrorCode::Internal, m),
    }
}

/// Executes one work request solo (deadline-carrying queries, updates,
/// and explicit client batches).
fn execute(req: Request, deadline: Deadline, shared: &Shared) -> Response {
    let svc = shared.service.as_ref();
    let threads = shared.cfg.worker_threads;
    let result = match req {
        Request::Range { radius, obj, .. } => svc
            .range(&obj, radius)
            .map(|(hits, stats)| Response::Range { hits, stats }),
        Request::Knn { k, obj, .. } => svc
            .knn(&obj, k as usize)
            .map(|(hits, stats)| Response::Knn { hits, stats }),
        Request::RangeApprox {
            radius,
            contraction,
            obj,
            ..
        } => svc
            .range_approx(&obj, radius, contraction)
            .map(|(hits, stats)| Response::Range { hits, stats }),
        Request::KnnApprox { k, alpha, obj, .. } => svc
            .knn_approx(&obj, k as usize, alpha)
            .map(|(hits, stats)| Response::Knn { hits, stats }),
        Request::Insert { obj, .. } => svc.insert(&obj).map(|stats| Response::Insert { stats }),
        Request::Delete { obj, .. } => svc
            .delete(&obj)
            .map(|(found, stats)| Response::Delete { found, stats }),
        Request::BatchRange { radius, objs, .. } => svc
            .range_batch(&objs, radius, threads, deadline)
            .map(|queries| Response::BatchRange { queries }),
        Request::BatchKnn { k, objs, .. } => svc
            .knn_batch(&objs, k as usize, threads, deadline)
            .map(|queries| Response::BatchKnn { queries }),
        // Replication is control-plane but file-backed: the WAL segment
        // read happens here, on a worker, never on the event loop.
        Request::WalShip { from_lsn } => svc
            .wal_segment(from_lsn)
            .map(|(wal_len, frames)| Response::WalShip { wal_len, frames }),
        Request::Ping | Request::Stats | Request::ObsStats | Request::Shutdown => {
            // In-memory control requests are answered on the event loop;
            // if one reaches here the dispatcher is broken, but a typed
            // error beats aborting the worker thread.
            return error_response(
                ErrorCode::Internal,
                "control-plane request reached the execution path",
            );
        }
    };
    match result {
        Ok(resp) => resp,
        Err(e) => service_error_response(e, shared),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_kind_matches_only_same_parameter_deadline_free() {
        let kind = BatchKind::Range { radius: 1.5 };
        let same = Request::Range {
            deadline_ms: 0,
            radius: 1.5,
            obj: vec![1, 2],
        };
        let other_radius = Request::Range {
            deadline_ms: 0,
            radius: 2.0,
            obj: vec![1, 2],
        };
        let with_deadline = Request::Range {
            deadline_ms: 100,
            radius: 1.5,
            obj: vec![1, 2],
        };
        let knn = Request::Knn {
            deadline_ms: 0,
            k: 3,
            obj: vec![1, 2],
        };
        assert_eq!(kind.matching_obj(&same), Some(&[1u8, 2][..]));
        assert_eq!(kind.matching_obj(&other_radius), None);
        assert_eq!(kind.matching_obj(&with_deadline), None);
        assert_eq!(kind.matching_obj(&knn), None);

        let kind = BatchKind::Knn { k: 3 };
        assert_eq!(kind.matching_obj(&knn), Some(&[1u8, 2][..]));
        assert_eq!(
            kind.matching_obj(&Request::Knn {
                deadline_ms: 0,
                k: 4,
                obj: vec![1, 2],
            }),
            None
        );
    }

    #[test]
    fn exact_and_approx_queries_never_coalesce() {
        // The QueryMode satellite's invariant: an approximate request
        // must never widen an exact traversal or vice versa, even when
        // every shared parameter (object, radius, k) is identical.
        let obj = vec![1, 2, 3];
        let exact_range = Request::Range {
            deadline_ms: 0,
            radius: 1.5,
            obj: obj.clone(),
        };
        let approx_range = Request::RangeApprox {
            deadline_ms: 0,
            radius: 1.5,
            contraction: 0.8,
            obj: obj.clone(),
        };
        // Even a no-op contraction of 1.0 keeps the modes apart: the
        // client asked for approximate semantics and gets that batch.
        let approx_range_full = Request::RangeApprox {
            deadline_ms: 0,
            radius: 1.5,
            contraction: 1.0,
            obj: obj.clone(),
        };
        let exact_kind = BatchKind::Range { radius: 1.5 };
        assert!(exact_kind.matching_obj(&exact_range).is_some());
        assert!(exact_kind.matching_obj(&approx_range).is_none());
        assert!(exact_kind.matching_obj(&approx_range_full).is_none());

        let approx_kind = BatchKind::RangeApprox {
            radius: 1.5,
            contraction: 0.8,
        };
        assert!(approx_kind.matching_obj(&approx_range).is_some());
        assert!(approx_kind.matching_obj(&exact_range).is_none());
        assert!(
            approx_kind.matching_obj(&approx_range_full).is_none(),
            "different contractions are different batches"
        );

        let exact_knn = Request::Knn {
            deadline_ms: 0,
            k: 5,
            obj: obj.clone(),
        };
        let approx_knn = Request::KnnApprox {
            deadline_ms: 0,
            k: 5,
            alpha: 1.0,
            obj: obj.clone(),
        };
        let exact_kind = BatchKind::Knn { k: 5 };
        assert!(exact_kind.matching_obj(&exact_knn).is_some());
        assert!(
            exact_kind.matching_obj(&approx_knn).is_none(),
            "alpha = 1 is still the approximate mode"
        );
        let approx_kind = BatchKind::KnnApprox { k: 5, alpha: 1.0 };
        assert!(approx_kind.matching_obj(&approx_knn).is_some());
        assert!(approx_kind.matching_obj(&exact_knn).is_none());

        // Parameters compare bitwise, so two requests with the same NaN
        // bit pattern do coalesce — harmlessly: the execution rejects
        // the whole batch as Malformed and every subscriber gets its own
        // typed error. A *different* NaN payload never matches.
        let nan_kind = BatchKind::KnnApprox {
            k: 5,
            alpha: f64::NAN,
        };
        assert!(nan_kind
            .matching_obj(&Request::KnnApprox {
                deadline_ms: 0,
                k: 5,
                alpha: f64::NAN,
                obj: obj.clone(),
            })
            .is_some());
        assert!(nan_kind
            .matching_obj(&Request::KnnApprox {
                deadline_ms: 0,
                k: 5,
                alpha: f64::from_bits(f64::NAN.to_bits() ^ 1),
                obj,
            })
            .is_none());
    }

    #[test]
    fn dispatch_queue_drains_under_shutdown() {
        use std::sync::atomic::AtomicBool;
        let q = DispatchQueue::new();
        let shutdown = AtomicBool::new(true);
        q.push(Work {
            conn: ConnId { idx: 0, gen: 0 },
            seq: 0,
            req: Request::Ping,
            deadline: Deadline::none(),
            write: false,
            control: false,
            enqueued_at: spb_obs::clock::now(),
        });
        // Queued work is still handed out after shutdown...
        assert!(q.pop_blocking(&shutdown).is_some());
        // ...and only then does the worker get its exit signal.
        assert!(q.pop_blocking(&shutdown).is_none());
    }
}
