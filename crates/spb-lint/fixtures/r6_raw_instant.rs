//! Known-bad fixture for R6 `raw-instant`: bare `Instant::now()` on
//! the request hot path, bypassing the `spb_obs::clock` helpers.

fn handle(elapsed: &mut u64) {
    let t0 = std::time::Instant::now();
    let t1 = Instant::now();
    *elapsed = t1.duration_since(t0).as_nanos() as u64;
}
