//! A disk-based R-tree over low-dimensional `f32` points — the substrate
//! of the OmniR-tree (the Omni-family maps objects to "omni-coordinates",
//! their distances to a small set of foci, and indexes those with a
//! conventional R-tree).
//!
//! * **Bulk-loading**: Sort-Tile-Recursive (STR) — recursive sorting by
//!   successive dimensions into tiles sized to fill leaves.
//! * **Insertion**: minimum-enlargement descent with quadratic split.
//! * **Search**: rectangle intersection and raw node access for the
//!   best-first kNN driver in [`omni`](crate::OmniRTree).
//!
//! Leaf entries store the point, the object id and an RAF offset; internal
//! entries store child MBRs. One node per 4 KB page.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use spb_storage::{BufferPool, Page, PageId, Pager, PAGE_DATA_SIZE};

const MAGIC: u64 = 0x4f4d_4e49_5254_5245; // "OMNIRTRE"
const HEADER: usize = 4;

/// An axis-aligned rectangle in omni-coordinate space.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    /// Low corner.
    pub lo: Vec<f32>,
    /// High corner.
    pub hi: Vec<f32>,
}

impl Rect {
    /// The degenerate rectangle of a single point.
    pub fn point(p: &[f32]) -> Rect {
        Rect {
            lo: p.to_vec(),
            hi: p.to_vec(),
        }
    }

    /// A rectangle from corners.
    pub fn new(lo: Vec<f32>, hi: Vec<f32>) -> Rect {
        debug_assert_eq!(lo.len(), hi.len());
        debug_assert!(lo.iter().zip(&hi).all(|(a, b)| a <= b));
        Rect { lo, hi }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// True iff the rectangles share a point.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((al, ah), (bl, bh))| al <= bh && bl <= ah)
    }

    /// True iff `p` lies inside.
    pub fn contains_point(&self, p: &[f32]) -> bool {
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(p)
            .all(|((l, h), c)| l <= c && c <= h)
    }

    /// Grows to cover `other`.
    pub fn union_with(&mut self, other: &Rect) {
        for i in 0..self.lo.len() {
            self.lo[i] = self.lo[i].min(other.lo[i]);
            self.hi[i] = self.hi[i].max(other.hi[i]);
        }
    }

    /// Sum of side lengths (the "margin" used by the enlargement
    /// heuristic; robust in high dimensions where volumes underflow).
    pub fn margin(&self) -> f64 {
        self.lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| (h - l) as f64)
            .sum()
    }

    /// Margin increase if this rectangle grew to cover `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        let mut grown = self.clone();
        grown.union_with(other);
        grown.margin() - self.margin()
    }

    /// `L∞` distance from `p` to the rectangle — the Omni lower bound on
    /// the metric distance of any object stored inside.
    pub fn mind_linf(&self, p: &[f32]) -> f64 {
        let mut best = 0.0f64;
        for ((&l, &h), &c) in self.lo.iter().zip(&self.hi).zip(p) {
            let gap = if c < l {
                (l - c) as f64
            } else if c > h {
                (c - h) as f64
            } else {
                0.0
            };
            best = best.max(gap);
        }
        best
    }
}

/// A leaf entry: one indexed point.
#[derive(Clone, Debug, PartialEq)]
pub struct RLeafEntry {
    /// RAF offset of the object.
    pub raf_off: u64,
    /// Object id.
    pub id: u32,
    /// Omni-coordinates.
    pub coords: Vec<f32>,
}

/// An internal entry: a child subtree and its MBR.
#[derive(Clone, Debug, PartialEq)]
pub struct RIntEntry {
    /// Child page.
    pub child: PageId,
    /// Child subtree's minimum bounding rectangle.
    pub rect: Rect,
}

/// A decoded R-tree node.
#[derive(Clone, Debug, PartialEq)]
pub enum RNode {
    /// Point-bearing leaf.
    Leaf(Vec<RLeafEntry>),
    /// MBR-bearing internal node.
    Internal(Vec<RIntEntry>),
}

impl RNode {
    fn mbr(&self, dim: usize) -> Rect {
        let mut rect: Option<Rect> = None;
        match self {
            RNode::Leaf(es) => {
                for e in es {
                    let p = Rect::point(&e.coords);
                    match &mut rect {
                        Some(r) => r.union_with(&p),
                        None => rect = Some(p),
                    }
                }
            }
            RNode::Internal(es) => {
                for e in es {
                    match &mut rect {
                        Some(r) => r.union_with(&e.rect),
                        None => rect = Some(e.rect.clone()),
                    }
                }
            }
        }
        rect.unwrap_or_else(|| Rect::new(vec![0.0; dim], vec![0.0; dim]))
    }
}

/// R-tree tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct RTreeParams {
    /// Page-cache capacity in pages.
    pub cache_pages: usize,
}

impl Default for RTreeParams {
    fn default() -> Self {
        RTreeParams { cache_pages: 32 }
    }
}

/// A disk-based R-tree over `dim`-dimensional `f32` points.
pub struct RTree {
    pool: BufferPool,
    dim: usize,
    root: Mutex<Option<PageId>>,
    len: AtomicU64,
    leaf_cap: usize,
    int_cap: usize,
}

impl RTree {
    /// Creates an empty R-tree at `path` over `dim`-dimensional points.
    pub fn create(path: &Path, dim: usize, params: &RTreeParams) -> io::Result<Self> {
        assert!((1..=64).contains(&dim), "dim must be in 1..=64");
        let pool = BufferPool::new(Pager::create(path)?, params.cache_pages);
        let meta = pool.allocate()?;
        debug_assert_eq!(meta, PageId(0));
        let leaf_entry = 12 + 4 * dim;
        let int_entry = 8 + 8 * dim;
        let tree = RTree {
            pool,
            dim,
            root: Mutex::new(None),
            len: AtomicU64::new(0),
            leaf_cap: ((PAGE_DATA_SIZE - HEADER) / leaf_entry).min(256),
            int_cap: ((PAGE_DATA_SIZE - HEADER) / int_entry).min(256),
        };
        tree.write_meta()?;
        Ok(tree)
    }

    fn write_meta(&self) -> io::Result<()> {
        let mut p = Page::new();
        p.write_u64(0, MAGIC);
        p.write_u64(8, self.root.lock().map_or(u64::MAX, |r| r.0));
        p.write_u64(16, self.len.load(Ordering::SeqCst));
        p.write_u32(24, self.dim as u32);
        self.pool.write(PageId(0), p)
    }

    fn encode_node(&self, node: &RNode) -> Page {
        let mut p = Page::new();
        let mut off = HEADER;
        match node {
            RNode::Leaf(es) => {
                assert!(es.len() <= self.leaf_cap, "leaf overflow");
                p.write_u8(0, 0);
                p.write_u16(2, es.len() as u16);
                for e in es {
                    p.write_u64(off, e.raf_off);
                    p.write_u32(off + 8, e.id);
                    for (i, &c) in e.coords.iter().enumerate() {
                        p.write_u32(off + 12 + 4 * i, c.to_bits());
                    }
                    off += 12 + 4 * self.dim;
                }
            }
            RNode::Internal(es) => {
                assert!(es.len() <= self.int_cap, "internal overflow");
                p.write_u8(0, 1);
                p.write_u16(2, es.len() as u16);
                for e in es {
                    p.write_u64(off, e.child.0);
                    for i in 0..self.dim {
                        p.write_u32(off + 8 + 4 * i, e.rect.lo[i].to_bits());
                        p.write_u32(off + 8 + 4 * (self.dim + i), e.rect.hi[i].to_bits());
                    }
                    off += 8 + 8 * self.dim;
                }
            }
        }
        p
    }

    /// Reads and decodes a node (one counted page access).
    pub fn read_node(&self, page: PageId) -> io::Result<RNode> {
        let p = self.pool.read(page)?;
        let count = p.read_u16(2) as usize;
        let mut off = HEADER;
        Ok(match p.read_u8(0) {
            0 => {
                let mut es = Vec::with_capacity(count);
                for _ in 0..count {
                    let raf_off = p.read_u64(off);
                    let id = p.read_u32(off + 8);
                    let coords: Vec<f32> = (0..self.dim)
                        .map(|i| f32::from_bits(p.read_u32(off + 12 + 4 * i)))
                        .collect();
                    es.push(RLeafEntry {
                        raf_off,
                        id,
                        coords,
                    });
                    off += 12 + 4 * self.dim;
                }
                RNode::Leaf(es)
            }
            1 => {
                let mut es = Vec::with_capacity(count);
                for _ in 0..count {
                    let child = PageId(p.read_u64(off));
                    let lo: Vec<f32> = (0..self.dim)
                        .map(|i| f32::from_bits(p.read_u32(off + 8 + 4 * i)))
                        .collect();
                    let hi: Vec<f32> = (0..self.dim)
                        .map(|i| f32::from_bits(p.read_u32(off + 8 + 4 * (self.dim + i))))
                        .collect();
                    es.push(RIntEntry {
                        child,
                        rect: Rect::new(lo, hi),
                    });
                    off += 8 + 8 * self.dim;
                }
                RNode::Internal(es)
            }
            t => panic!("corrupt R-tree page: unknown type {t}"),
        })
    }

    // ------------------------------------------------------------------
    // STR bulk-loading.
    // ------------------------------------------------------------------

    /// Bulk-loads `items = (coords, raf_off, id)` with Sort-Tile-Recursive.
    ///
    /// # Panics
    /// Panics if the tree is not empty.
    pub fn bulk_load(&self, mut items: Vec<(Vec<f32>, u64, u32)>) -> io::Result<()> {
        assert!(
            self.root.lock().is_none(),
            "bulk_load requires an empty tree"
        );
        if items.is_empty() {
            return Ok(());
        }
        let n = items.len();
        self.str_sort(&mut items, 0);
        // Leaves.
        let mut level: Vec<(PageId, Rect)> = Vec::with_capacity(n.div_ceil(self.leaf_cap));
        for chunk in items.chunks(self.leaf_cap) {
            let es: Vec<RLeafEntry> = chunk
                .iter()
                .map(|(c, off, id)| RLeafEntry {
                    raf_off: *off,
                    id: *id,
                    coords: c.clone(),
                })
                .collect();
            let node = RNode::Leaf(es);
            let rect = node.mbr(self.dim);
            let page = self.pool.allocate()?;
            self.pool.write(page, self.encode_node(&node))?;
            level.push((page, rect));
        }
        // Upper levels: consecutive grouping (STR order is already tiled).
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(self.int_cap));
            for chunk in level.chunks(self.int_cap) {
                let es: Vec<RIntEntry> = chunk
                    .iter()
                    .map(|(p, r)| RIntEntry {
                        child: *p,
                        rect: r.clone(),
                    })
                    .collect();
                let node = RNode::Internal(es);
                let rect = node.mbr(self.dim);
                let page = self.pool.allocate()?;
                self.pool.write(page, self.encode_node(&node))?;
                next.push((page, rect));
            }
            level = next;
        }
        *self.root.lock() = Some(level[0].0);
        self.len.store(n as u64, Ordering::SeqCst);
        self.write_meta()
    }

    /// STR: recursively sort by dimension and slice into tiles.
    fn str_sort(&self, items: &mut [(Vec<f32>, u64, u32)], dim_idx: usize) {
        if dim_idx + 1 >= self.dim || items.len() <= self.leaf_cap {
            items.sort_by(|a, b| a.0[dim_idx].total_cmp(&b.0[dim_idx]));
            return;
        }
        items.sort_by(|a, b| a.0[dim_idx].total_cmp(&b.0[dim_idx]));
        let leaves = items.len().div_ceil(self.leaf_cap);
        let slabs = (leaves as f64)
            .powf(1.0 / (self.dim - dim_idx) as f64)
            .ceil() as usize;
        let slab_size = items.len().div_ceil(slabs.max(1));
        let mut start = 0;
        while start < items.len() {
            let end = (start + slab_size).min(items.len());
            self.str_sort(&mut items[start..end], dim_idx + 1);
            start = end;
        }
    }

    // ------------------------------------------------------------------
    // Insertion.
    // ------------------------------------------------------------------

    /// Inserts one point (minimum-enlargement descent, quadratic split).
    pub fn insert(&self, coords: &[f32], raf_off: u64, id: u32) -> io::Result<()> {
        assert_eq!(coords.len(), self.dim);
        let entry = RLeafEntry {
            raf_off,
            id,
            coords: coords.to_vec(),
        };
        let root = *self.root.lock();
        match root {
            None => {
                let page = self.pool.allocate()?;
                self.pool
                    .write(page, self.encode_node(&RNode::Leaf(vec![entry])))?;
                *self.root.lock() = Some(page);
            }
            Some(root) => {
                if let Some((left, right)) = self.insert_rec(root, entry)? {
                    let page = self.pool.allocate()?;
                    let node = RNode::Internal(vec![left, right]);
                    self.pool.write(page, self.encode_node(&node))?;
                    *self.root.lock() = Some(page);
                }
            }
        }
        self.len.fetch_add(1, Ordering::SeqCst);
        self.write_meta()
    }

    /// Returns `Some((left, right))` when the child split.
    fn insert_rec(
        &self,
        page: PageId,
        entry: RLeafEntry,
    ) -> io::Result<Option<(RIntEntry, RIntEntry)>> {
        match self.read_node(page)? {
            RNode::Leaf(mut es) => {
                es.push(entry);
                if es.len() <= self.leaf_cap {
                    self.pool.write(page, self.encode_node(&RNode::Leaf(es)))?;
                    return Ok(None);
                }
                // Quadratic-ish split: seeds = the pair farthest apart in
                // margin terms, then assign by least enlargement.
                let rects: Vec<Rect> = es.iter().map(|e| Rect::point(&e.coords)).collect();
                let (a, b) = split_seeds(&rects);
                let (left_idx, right_idx) = quadratic_assign(&rects, a, b);
                let left: Vec<RLeafEntry> = left_idx.iter().map(|&i| es[i].clone()).collect();
                let right: Vec<RLeafEntry> = right_idx.iter().map(|&i| es[i].clone()).collect();
                let lnode = RNode::Leaf(left);
                let rnode = RNode::Leaf(right);
                let lrect = lnode.mbr(self.dim);
                let rrect = rnode.mbr(self.dim);
                let rpage = self.pool.allocate()?;
                self.pool.write(page, self.encode_node(&lnode))?;
                self.pool.write(rpage, self.encode_node(&rnode))?;
                Ok(Some((
                    RIntEntry {
                        child: page,
                        rect: lrect,
                    },
                    RIntEntry {
                        child: rpage,
                        rect: rrect,
                    },
                )))
            }
            RNode::Internal(mut es) => {
                let point = Rect::point(&entry.coords);
                let idx = es
                    .iter()
                    .enumerate()
                    .min_by(|a, b| {
                        a.1.rect
                            .enlargement(&point)
                            .total_cmp(&b.1.rect.enlargement(&point))
                            .then(a.1.rect.margin().total_cmp(&b.1.rect.margin()))
                    })
                    .map(|(i, _)| i)
                    .expect("internal node non-empty");
                es[idx].rect.union_with(&point);
                let child = es[idx].child;
                match self.insert_rec(child, entry)? {
                    None => {
                        self.pool
                            .write(page, self.encode_node(&RNode::Internal(es)))?;
                        Ok(None)
                    }
                    Some((l, r)) => {
                        es.remove(idx);
                        es.push(l);
                        es.push(r);
                        if es.len() <= self.int_cap {
                            self.pool
                                .write(page, self.encode_node(&RNode::Internal(es)))?;
                            return Ok(None);
                        }
                        let rects: Vec<Rect> = es.iter().map(|e| e.rect.clone()).collect();
                        let (a, b) = split_seeds(&rects);
                        let (li, ri) = quadratic_assign(&rects, a, b);
                        let left: Vec<RIntEntry> = li.iter().map(|&i| es[i].clone()).collect();
                        let right: Vec<RIntEntry> = ri.iter().map(|&i| es[i].clone()).collect();
                        let lnode = RNode::Internal(left);
                        let rnode = RNode::Internal(right);
                        let lrect = lnode.mbr(self.dim);
                        let rrect = rnode.mbr(self.dim);
                        let rpage = self.pool.allocate()?;
                        self.pool.write(page, self.encode_node(&lnode))?;
                        self.pool.write(rpage, self.encode_node(&rnode))?;
                        Ok(Some((
                            RIntEntry {
                                child: page,
                                rect: lrect,
                            },
                            RIntEntry {
                                child: rpage,
                                rect: rrect,
                            },
                        )))
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Search.
    // ------------------------------------------------------------------

    /// All `(raf_off, id)` whose point lies inside `rect`.
    pub fn search_rect(&self, rect: &Rect) -> io::Result<Vec<(u64, u32)>> {
        let mut out = Vec::new();
        let Some(root) = *self.root.lock() else {
            return Ok(out);
        };
        let mut stack = vec![root];
        while let Some(page) = stack.pop() {
            match self.read_node(page)? {
                RNode::Leaf(es) => {
                    for e in es {
                        if rect.contains_point(&e.coords) {
                            out.push((e.raf_off, e.id));
                        }
                    }
                }
                RNode::Internal(es) => {
                    for e in es {
                        if e.rect.intersects(rect) {
                            stack.push(e.child);
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// The root page, if any.
    pub fn root_page(&self) -> Option<PageId> {
        *self.root.lock()
    }

    /// Indexed point count.
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::SeqCst)
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The buffer pool (PA accounting / cache control).
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }
}

/// The pair of rectangles wasting the most margin when grouped — the
/// quadratic split's seeds.
fn split_seeds(rects: &[Rect]) -> (usize, usize) {
    let mut best = (0, 1, f64::NEG_INFINITY);
    for i in 0..rects.len() {
        for j in i + 1..rects.len() {
            let mut u = rects[i].clone();
            u.union_with(&rects[j]);
            let waste = u.margin() - rects[i].margin() - rects[j].margin();
            if waste > best.2 {
                best = (i, j, waste);
            }
        }
    }
    (best.0, best.1)
}

/// Assigns every rectangle to the seed whose MBR grows least, keeping both
/// sides non-empty.
fn quadratic_assign(rects: &[Rect], a: usize, b: usize) -> (Vec<usize>, Vec<usize>) {
    let mut left = vec![a];
    let mut right = vec![b];
    let mut lrect = rects[a].clone();
    let mut rrect = rects[b].clone();
    let min_side = rects.len() / 3; // keep splits reasonably balanced
    for (i, r) in rects.iter().enumerate() {
        if i == a || i == b {
            continue;
        }
        let remaining = rects.len() - left.len() - right.len();
        if left.len() + remaining <= min_side.max(1) {
            left.push(i);
            lrect.union_with(r);
            continue;
        }
        if right.len() + remaining <= min_side.max(1) {
            right.push(i);
            rrect.union_with(r);
            continue;
        }
        if lrect.enlargement(r) <= rrect.enlargement(r) {
            left.push(i);
            lrect.union_with(r);
        } else {
            right.push(i);
            rrect.union_with(r);
        }
    }
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use spb_storage::TempDir;

    fn points(n: usize, dim: usize, seed: u64) -> Vec<(Vec<f32>, u64, u32)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                (
                    (0..dim).map(|_| rng.gen::<f32>()).collect(),
                    i as u64 * 8,
                    i as u32,
                )
            })
            .collect()
    }

    fn brute(items: &[(Vec<f32>, u64, u32)], rect: &Rect) -> Vec<u32> {
        let mut ids: Vec<u32> = items
            .iter()
            .filter(|(c, _, _)| rect.contains_point(c))
            .map(|&(_, _, id)| id)
            .collect();
        ids.sort_unstable();
        ids
    }

    #[test]
    fn rect_geometry() {
        let r = Rect::new(vec![0.0, 0.0], vec![1.0, 2.0]);
        assert!(r.contains_point(&[0.5, 1.5]));
        assert!(!r.contains_point(&[1.5, 0.5]));
        assert!(r.intersects(&Rect::new(vec![0.9, 1.9], vec![2.0, 3.0])));
        assert!(!r.intersects(&Rect::new(vec![1.1, 0.0], vec![2.0, 1.0])));
        assert_eq!(r.margin(), 3.0);
        assert_eq!(r.mind_linf(&[0.5, 1.0]), 0.0);
        assert_eq!(r.mind_linf(&[2.0, 1.0]), 1.0);
        assert_eq!(r.mind_linf(&[2.0, 4.0]), 2.0);
    }

    #[test]
    fn bulk_load_then_search_matches_bruteforce() {
        let items = points(3000, 4, 1);
        let dir = TempDir::new("rtree-bulk");
        let t = RTree::create(&dir.path().join("r.db"), 4, &RTreeParams::default()).unwrap();
        t.bulk_load(items.clone()).unwrap();
        assert_eq!(t.len(), 3000);
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..20 {
            let lo: Vec<f32> = (0..4).map(|_| rng.gen_range(0.0..0.8)).collect();
            let hi: Vec<f32> = lo.iter().map(|&l| l + rng.gen_range(0.05..0.3)).collect();
            let rect = Rect::new(lo, hi);
            let mut got: Vec<u32> = t
                .search_rect(&rect)
                .unwrap()
                .into_iter()
                .map(|(_, id)| id)
                .collect();
            got.sort_unstable();
            assert_eq!(got, brute(&items, &rect));
        }
    }

    #[test]
    fn inserts_match_bruteforce() {
        let items = points(1200, 3, 2);
        let dir = TempDir::new("rtree-ins");
        let t = RTree::create(&dir.path().join("r.db"), 3, &RTreeParams::default()).unwrap();
        for (c, off, id) in &items {
            t.insert(c, *off, *id).unwrap();
        }
        assert_eq!(t.len(), 1200);
        let rect = Rect::new(vec![0.2; 3], vec![0.6; 3]);
        let mut got: Vec<u32> = t
            .search_rect(&rect)
            .unwrap()
            .into_iter()
            .map(|(_, id)| id)
            .collect();
        got.sort_unstable();
        assert_eq!(got, brute(&items, &rect));
    }

    #[test]
    fn mbrs_cover_children() {
        let items = points(2000, 5, 3);
        let dir = TempDir::new("rtree-mbr");
        let t = RTree::create(&dir.path().join("r.db"), 5, &RTreeParams::default()).unwrap();
        t.bulk_load(items).unwrap();
        fn check(t: &RTree, page: PageId, outer: Option<&Rect>) {
            match t.read_node(page).unwrap() {
                RNode::Leaf(es) => {
                    if let Some(r) = outer {
                        for e in &es {
                            assert!(r.contains_point(&e.coords));
                        }
                    }
                }
                RNode::Internal(es) => {
                    for e in &es {
                        if let Some(r) = outer {
                            let mut u = r.clone();
                            u.union_with(&e.rect);
                            assert_eq!(&u, r, "child MBR escapes parent");
                        }
                        check(t, e.child, Some(&e.rect));
                    }
                }
            }
        }
        check(&t, t.root_page().unwrap(), None);
    }

    #[test]
    fn empty_tree_searches_cleanly() {
        let dir = TempDir::new("rtree-empty");
        let t = RTree::create(&dir.path().join("r.db"), 2, &RTreeParams::default()).unwrap();
        assert!(t.is_empty());
        let hits = t
            .search_rect(&Rect::new(vec![0.0, 0.0], vec![1.0, 1.0]))
            .unwrap();
        assert!(hits.is_empty());
    }
}
