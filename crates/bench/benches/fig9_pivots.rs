//! Fig. 9 bench: kNN latency under each pivot-selection algorithm
//! (|P| = 5).

use criterion::{criterion_group, criterion_main, Criterion};
use spb_bench::experiments::common::build_spb;
use spb_bench::Scale;
use spb_core::{SpbConfig, Traversal};
use spb_metric::dataset;
use spb_pivots::PivotMethod;

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let data = dataset::words(scale.words(), scale.seed());
    let mut group = c.benchmark_group("fig9_pivots");
    group.sample_size(20);
    for method in [
        PivotMethod::Hfi,
        PivotMethod::Hf,
        PivotMethod::Fft,
        PivotMethod::Spacing,
        PivotMethod::Pca,
    ] {
        let cfg = SpbConfig {
            pivot_method: method,
            ..SpbConfig::default()
        };
        let (_dir, tree) = build_spb("bench-f9", &data, dataset::words_metric(), &cfg);
        group.bench_function(format!("knn8_words_{}", method.name()), |b| {
            let mut i = 0usize;
            b.iter(|| {
                tree.flush_caches();
                let q = &data[i % 100];
                i += 1;
                tree.knn_with(q, 8, Traversal::Incremental).unwrap().0.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
