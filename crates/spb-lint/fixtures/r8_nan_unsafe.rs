//! Known-bad fixture for R8 `nan-unsafe`: `partial_cmp` float
//! comparisons in the accel zone. A NaN model parameter makes the
//! first site panic and the second impose an arbitrary order.

fn worst_error(errs: &mut [f64]) -> f64 {
    errs.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let best = errs.iter().cloned().reduce(|a, b| match a.partial_cmp(&b) {
        Some(std::cmp::Ordering::Less) => a,
        _ => b,
    });
    best.unwrap_or(0.0)
}
