//! Crash safety of the learned-positioning model: the checkpoint
//! sequence "retrain stale model → write `spb.model` → update
//! `spb.meta`" is crashed at *every* durable operation (including the
//! window between the model write and the meta update). After each
//! injected crash the index must reopen consistent, answer queries
//! byte-identically to brute force whether or not the model survived
//! (classic-descent fallback), and an explicit `rebuild_accel` must
//! restore learned positioning with identical results.

use std::path::Path;

use spb_core::{verify_dir, AccelPolicy, Positioning, SpbConfig, SpbTree};
use spb_metric::{dataset, Distance, EditDistance, Word};
use spb_storage::fault::{self, FaultMode, FaultPlan};
use spb_storage::TempDir;

const BASELINE: usize = 80;
const RADIUS: f64 = 2.0;
const K: usize = 5;

fn copy_dir(src: &Path, dst: &Path) {
    std::fs::create_dir_all(dst).unwrap();
    for entry in std::fs::read_dir(src).unwrap() {
        let entry = entry.unwrap();
        std::fs::copy(entry.path(), dst.join(entry.file_name())).unwrap();
    }
}

/// The crashed workload: insertions stale the model, then a checkpoint
/// retrains it, writes `spb.model`, and updates `spb.meta` — the window
/// the satellite targets. Returns the first injected error, if any.
fn apply(tree: &SpbTree<Word, EditDistance>, extra: &[Word]) -> Option<std::io::Error> {
    for w in extra {
        if let Err(e) = tree.insert(w) {
            return Some(e);
        }
    }
    tree.checkpoint().err()
}

fn brute_range(set: &[Word], q: &Word, r: f64) -> Vec<String> {
    let metric = EditDistance::default();
    let mut words: Vec<String> = set
        .iter()
        .filter(|w| metric.distance(q, w) <= r)
        .map(|w| w.as_str().to_owned())
        .collect();
    words.sort();
    words
}

/// Queries the recovered tree and checks agreement with brute force
/// over `expected` — via the default (Auto) path and via an explicitly
/// requested Learned path, which must silently fall back when the crash
/// left no usable model.
fn check_queries(tree: &SpbTree<Word, EditDistance>, expected: &[Word], q: &Word, ctx: &str) {
    let want = brute_range(expected, q, RADIUS);
    for pos in [
        Positioning::Auto,
        Positioning::Classic,
        Positioning::Learned,
    ] {
        let (hits, _) = tree.range_positioned(q, RADIUS, pos).unwrap();
        let mut got: Vec<String> = hits.iter().map(|(_, w)| w.as_str().to_owned()).collect();
        got.sort();
        assert_eq!(
            got, want,
            "{ctx}: range ({pos:?}) disagrees with brute force"
        );
    }
    let (classic, _) = tree.knn_positioned(q, K, Positioning::Classic).unwrap();
    let (learned, _) = tree.knn_positioned(q, K, Positioning::Learned).unwrap();
    assert_eq!(classic, learned, "{ctx}: knn fallback diverged");
}

#[test]
fn model_write_crash_falls_back_then_rebuilds() {
    let _serial = fault::test_lock();
    let root = TempDir::new("spb-accel-crash");

    // Baseline: built with learned positioning, cleanly shut down, so
    // `spb.model` exists and matches the epoch.
    let base = root.path().join("base");
    let baseline = dataset::words(BASELINE, 13);
    let cfg = SpbConfig {
        accel: AccelPolicy::Learned,
        ..SpbConfig::default()
    };
    let tree = SpbTree::build(&base, &baseline, EditDistance::default(), &cfg).unwrap();
    assert!(tree.accel_model_fresh());
    drop(tree);
    assert!(verify_dir(&base).unwrap().ok());
    assert!(base.join(spb_accel::MODEL_FILE).exists());

    let extra: Vec<Word> = (0..4).map(|i| Word::new(format!("zqaccel{i}"))).collect();
    let mut expected = baseline.clone();
    expected.extend(extra.iter().cloned());
    let query = baseline[7].clone();

    // Pass 1: count durable operations with a plan that never fires.
    // The count covers the inserts, the checkpoint's WAL/meta work, and
    // the model rewrite (its atomic write routes through the hooks).
    let count_dir = root.path().join("count");
    copy_dir(&base, &count_dir);
    let guard = FaultPlan {
        scope: count_dir.clone(),
        fail_after: u64::MAX,
        mode: FaultMode::Clean,
        seed: 0,
    }
    .install();
    let tree = SpbTree::open(&count_dir, EditDistance::default(), 32).unwrap();
    assert!(apply(&tree, &extra).is_none());
    assert!(
        tree.accel_model_fresh(),
        "checkpoint must retrain the staled model"
    );
    drop(tree);
    let total_ops = guard.ops_observed();
    drop(guard);
    assert!(total_ops > 6, "workload has only {total_ops} durable ops");

    // Pass 2: crash at every durable operation.
    for k in 0..total_ops {
        let work = root.path().join(format!("k{k}"));
        copy_dir(&base, &work);
        let mode = match k % 3 {
            0 => FaultMode::Clean,
            1 => FaultMode::Partial,
            _ => FaultMode::BitFlip,
        };
        let guard = FaultPlan {
            scope: work.clone(),
            fail_after: k,
            mode,
            seed: 0xacce1 ^ k,
        }
        .install();
        let tree = SpbTree::open(&work, EditDistance::default(), 32).unwrap();
        if let Some(e) = apply(&tree, &extra) {
            assert!(
                fault::is_injected_crash(&e),
                "k={k}: real I/O error, not the injected crash: {e}"
            );
        }
        drop(tree);
        assert!(guard.tripped(), "k={k}: the crash never fired");
        drop(guard);

        // Reopen: recovery must produce a consistent index regardless
        // of whether the crash landed before, inside, or after the
        // model write. A torn/missing/out-of-date model is *not* an
        // error — queries fall back to classic descent.
        let tree = SpbTree::open(&work, EditDistance::default(), 32).unwrap();
        let report = verify_dir(&work).unwrap();
        assert!(report.ok(), "k={k} ({mode:?}): {:?}", report.problems);
        let committed: &[Word] = if tree.len() == expected.len() as u64 {
            &expected
        } else {
            // The crash cut the insert sequence short; queries must
            // agree with whatever prefix was made durable.
            let n = (tree.len() as usize)
                .checked_sub(baseline.len())
                .expect("recovered tree lost baseline objects");
            &expected[..baseline.len() + n]
        };
        check_queries(&tree, committed, &query, &format!("k={k} ({mode:?})"));

        // Lazy rebuild restores learned positioning with — again —
        // identical results.
        tree.rebuild_accel().unwrap();
        assert!(
            tree.accel_model_fresh(),
            "k={k}: rebuild left a stale model"
        );
        check_queries(&tree, committed, &query, &format!("k={k} rebuilt"));

        drop(tree);
        std::fs::remove_dir_all(&work).unwrap();
    }
}
