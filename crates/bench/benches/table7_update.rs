//! Table 7 bench: single-object insertion latency per MAM.

use criterion::{criterion_group, criterion_main, Criterion};
use spb_bench::experiments::common::build_suite;
use spb_bench::Scale;
use spb_metric::dataset;

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let data = dataset::words(scale.words(), scale.seed());
    let extra = dataset::words(10_000, scale.seed() + 1);
    let suite = build_suite("bench-t7", &data, dataset::words_metric());
    let mut group = c.benchmark_group("table7_update");
    group.sample_size(50);
    {
        let mut i = 0usize;
        group.bench_function("insert_mtree", |b| {
            b.iter(|| {
                let o = &extra[i % extra.len()];
                i += 1;
                suite.mtree.insert(o).unwrap()
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("insert_omni", |b| {
            b.iter(|| {
                let o = &extra[i % extra.len()];
                i += 1;
                suite.omni.insert(o).unwrap()
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("insert_mindex", |b| {
            b.iter(|| {
                let o = &extra[i % extra.len()];
                i += 1;
                suite.mindex.insert(o).unwrap()
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("insert_spb", |b| {
            b.iter(|| {
                let o = &extra[i % extra.len()];
                i += 1;
                suite.spb.insert(o).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
