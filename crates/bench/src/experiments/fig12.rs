//! Fig. 12 — range query performance vs the radius `r` (as a percentage
//! of `d⁺`) for all four MAMs on Signature and the real datasets.
//!
//! Paper's shape: the SPB-tree has the fewest page accesses at every
//! radius (clustered B⁺-tree leaves + clustered RAF) and the
//! fewest-or-comparable distance computations; costs of every method grow
//! with `r`.

use spb_metric::{dataset, Distance, MetricObject};

use crate::experiments::common::{build_suite, suite_range_avg, workload, MAM_NAMES};
use crate::runner::fmt_num;
use crate::{Scale, Table};

const RADII_PCT: [f64; 7] = [2.0, 4.0, 6.0, 8.0, 16.0, 32.0, 64.0];

fn sweep_for<O: MetricObject, D: Distance<O> + Clone>(
    name: &str,
    data: &[O],
    metric: D,
    scale: Scale,
) {
    let d_plus = metric.max_distance();
    let queries = workload(data, &scale);
    let suite = build_suite(&format!("f12-{name}"), data, metric);
    let mut t = Table::new(
        &format!("Fig. 12 ({name}): range query vs r (% of d+)"),
        &["r(%)", "MAM", "PA", "compdists", "Time(s)"],
    );
    for pct in RADII_PCT {
        let r = d_plus * pct / 100.0;
        let avgs = suite_range_avg(&suite, queries, r);
        for (mam, avg) in MAM_NAMES.iter().zip(avgs) {
            t.row(vec![
                format!("{pct}"),
                (*mam).to_owned(),
                fmt_num(avg.pa),
                fmt_num(avg.compdists),
                format!("{:.4}", avg.time_s),
            ]);
        }
    }
    t.print();
}

/// Reproduces Fig. 12 at the given scale.
pub fn run(scale: Scale) {
    let seed = scale.seed();
    sweep_for(
        "Signature",
        &dataset::signature(scale.signature(), seed),
        dataset::signature_metric(),
        scale,
    );
    sweep_for(
        "Color",
        &dataset::color(scale.color(), seed),
        dataset::color_metric(),
        scale,
    );
    sweep_for(
        "Words",
        &dataset::words(scale.words(), seed),
        dataset::words_metric(),
        scale,
    );
}
