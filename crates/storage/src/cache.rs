//! LRU buffer pool and the paper's page-access accounting.
//!
//! The paper measures I/O cost as the number of page accesses (*PA*). Its
//! query experiments put a small LRU cache in front of the index files and
//! flush it before every query, so *PA* counts pages actually fetched
//! (duplicates within one query are absorbed by the cache — Fig. 10 sweeps
//! the cache capacity from 0 to 128 pages). [`BufferPool`] reproduces that
//! protocol: logical reads, physical reads (misses) and writes are counted
//! separately, and [`BufferPool::page_accesses`] = misses + writes is the
//! paper's metric.
//!
//! ## Sharding
//!
//! A pool can be lock-striped into N independent LRU segments
//! ([`BufferPool::new_sharded`]): a page's shard is `PageId mod N`, so
//! parallel readers of different pages never contend on one mutex. Each
//! shard keeps its own counters; [`BufferPool::stats`] sums them, keeping
//! the paper's PA accounting exact. The default ([`BufferPool::new`]) is a
//! single shard, which is byte-for-byte the paper's global LRU.

use std::collections::{BTreeMap, HashMap};
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::lockrank::{self, LockRank, RankedMutexGuard};
use crate::page::{Page, PageId};
use crate::pager::Pager;

/// A snapshot of I/O counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Page reads requested by the index code.
    pub logical_reads: u64,
    /// Reads that missed the cache and touched the pager.
    pub physical_reads: u64,
    /// Page writes (write-through: every write touches the pager).
    pub writes: u64,
    /// fsyncs of the underlying file (durability cost; not part of *PA*).
    pub fsyncs: u64,
}

impl IoStats {
    /// The paper's *PA*: physical reads plus writes. fsyncs are reported
    /// separately — the paper's metric predates the durability layer.
    pub fn page_accesses(&self) -> u64 {
        self.physical_reads + self.writes
    }
}

struct PoolInner {
    capacity: usize,
    tick: u64,
    /// PageId → (cached page, last-use tick).
    map: HashMap<PageId, (Arc<Page>, u64)>,
    /// last-use tick → PageId: the eviction order. Ticks are unique, so
    /// the least recently used entry is always `order`'s first key and
    /// eviction is O(log n) instead of a linear scan over the map.
    order: BTreeMap<u64, PageId>,
}

impl PoolInner {
    fn touch(&mut self, id: PageId) {
        self.tick += 1;
        let tick = self.tick;
        if let Some(e) = self.map.get_mut(&id) {
            self.order.remove(&e.1);
            e.1 = tick;
            self.order.insert(tick, id);
        }
    }

    /// Inserts (or refreshes) a page; returns how many entries were
    /// evicted to stay within capacity.
    fn insert(&mut self, id: PageId, page: Arc<Page>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        self.tick += 1;
        if let Some(old) = self.map.insert(id, (page, self.tick)) {
            self.order.remove(&old.1);
        }
        self.order.insert(self.tick, id);
        self.evict_to_capacity()
    }

    /// Evicts least-recently-used entries until the shard fits its
    /// capacity again; returns the number evicted.
    fn evict_to_capacity(&mut self) -> u64 {
        let mut evicted = 0;
        while self.map.len() > self.capacity {
            // `order` mirrors `map`, so a non-empty map always yields a
            // victim; bail instead of panicking if that ever breaks.
            let Some((_, victim)) = self.order.pop_first() else {
                break;
            };
            self.map.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }
}

/// The `phase.buffer_io` histogram: time spent in the pager on cache
/// misses and write-throughs (nanoseconds). Process-global, shared by
/// every pool.
fn buffer_io_hist() -> &'static Arc<spb_obs::Histogram> {
    static H: OnceLock<Arc<spb_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| spb_obs::histogram("phase.buffer_io"))
}

/// One lock stripe of the pool: an LRU segment plus its own counters.
///
/// The per-shard `AtomicU64`s are the paper's exact *PA* accounting and
/// stay per-pool (resettable between queries). The `obs_*` counters
/// mirror hits/misses/evictions into the process-global registry under
/// `pool.shard{N}.*` — every pool sharing a shard index shares the
/// named counter, so the registry reports process-wide totals.
struct Shard {
    inner: Mutex<PoolInner>,
    logical_reads: AtomicU64,
    physical_reads: AtomicU64,
    writes: AtomicU64,
    obs_hits: Arc<spb_obs::Counter>,
    obs_misses: Arc<spb_obs::Counter>,
    obs_evictions: Arc<spb_obs::Counter>,
}

impl Shard {
    fn new(capacity: usize, idx: usize) -> Self {
        Shard {
            inner: Mutex::new(PoolInner {
                capacity,
                tick: 0,
                map: HashMap::new(),
                order: BTreeMap::new(),
            }),
            logical_reads: AtomicU64::new(0),
            physical_reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            obs_hits: spb_obs::counter(&format!("pool.shard{idx}.hits")),
            obs_misses: spb_obs::counter(&format!("pool.shard{idx}.misses")),
            obs_evictions: spb_obs::counter(&format!("pool.shard{idx}.evictions")),
        }
    }

    fn stats(&self) -> IoStats {
        IoStats {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            fsyncs: 0,
        }
    }

    /// The only way to take the shard mutex: registers the acquisition
    /// at [`LockRank::BufferShard`] so debug builds catch latch-ordering
    /// violations (and `spb-lint` rejects direct `.inner.lock()` calls).
    fn lock_inner(&self) -> RankedMutexGuard<'_, PoolInner> {
        lockrank::lock(&self.inner, LockRank::BufferShard)
    }
}

/// A write-through LRU buffer pool over a [`Pager`], optionally
/// lock-striped into several independent shards.
pub struct BufferPool {
    pager: Pager,
    shards: Vec<Shard>,
    /// Total requested capacity across all shards (Fig. 10's parameter).
    capacity: AtomicUsize,
}

impl BufferPool {
    /// Wraps `pager` with a cache of `capacity` pages (0 disables caching).
    /// Single shard: exactly the paper's global LRU.
    pub fn new(pager: Pager, capacity: usize) -> Self {
        Self::new_sharded(pager, capacity, 1)
    }

    /// Wraps `pager` with a cache of `capacity` pages split over `shards`
    /// lock stripes (clamped to at least 1). Page `p` lives in shard
    /// `p mod shards`; each shard holds `⌈capacity / shards⌉` pages.
    pub fn new_sharded(pager: Pager, capacity: usize, shards: usize) -> Self {
        let n = shards.max(1);
        let per_shard = Self::shard_capacity(capacity, n);
        BufferPool {
            pager,
            shards: (0..n).map(|i| Shard::new(per_shard, i)).collect(),
            capacity: AtomicUsize::new(capacity),
        }
    }

    fn shard_capacity(total: usize, shards: usize) -> usize {
        if total == 0 {
            0
        } else {
            total.div_ceil(shards)
        }
    }

    fn shard_of(&self, id: PageId) -> &Shard {
        &self.shards[id.0 as usize % self.shards.len()]
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Counter snapshot of one shard (pager fsyncs are pool-global and
    /// reported as 0 here; they appear in [`BufferPool::stats`]).
    pub fn shard_stats(&self, shard: usize) -> IoStats {
        self.shards[shard].stats()
    }

    /// Allocates a fresh page. Allocation writes the zeroed page and is
    /// counted as a write (construction cost includes it, as in Table 6).
    pub fn allocate(&self) -> io::Result<PageId> {
        let id = self.pager.allocate()?;
        self.shard_of(id).writes.fetch_add(1, Ordering::Relaxed);
        Ok(id)
    }

    /// Reads a page, serving repeats from the cache.
    pub fn read(&self, id: PageId) -> io::Result<Arc<Page>> {
        let shard = self.shard_of(id);
        shard.logical_reads.fetch_add(1, Ordering::Relaxed);
        {
            let mut inner = shard.lock_inner();
            if let Some(page) = inner.map.get(&id).map(|e| Arc::clone(&e.0)) {
                inner.touch(id);
                shard.obs_hits.incr();
                return Ok(page);
            }
        }
        let io_start = spb_obs::clock::now();
        let page = Arc::new(self.pager.read_page(id)?);
        buffer_io_hist().record(spb_obs::clock::nanos_since(io_start));
        let mut inner = shard.lock_inner();
        // Double-check: a racing reader (or a write-through) may have
        // cached the page while we were at the pager. Serving the cached
        // copy keeps PA accounting deterministic under striping and never
        // clobbers a fresher write-through copy with our possibly-stale
        // read.
        if let Some(cached) = inner.map.get(&id).map(|e| Arc::clone(&e.0)) {
            inner.touch(id);
            shard.obs_hits.incr();
            return Ok(cached);
        }
        shard.physical_reads.fetch_add(1, Ordering::Relaxed);
        shard.obs_misses.incr();
        let evicted = inner.insert(id, Arc::clone(&page));
        drop(inner);
        if evicted > 0 {
            shard.obs_evictions.add(evicted);
        }
        Ok(page)
    }

    /// Writes a page through to disk and refreshes the cached copy.
    pub fn write(&self, id: PageId, page: Page) -> io::Result<()> {
        let io_start = spb_obs::clock::now();
        self.pager.write_page(id, &page)?;
        buffer_io_hist().record(spb_obs::clock::nanos_since(io_start));
        let shard = self.shard_of(id);
        shard.writes.fetch_add(1, Ordering::Relaxed);
        let mut inner = shard.lock_inner();
        if inner.capacity > 0 {
            let evicted = inner.insert(id, Arc::new(page));
            if evicted > 0 {
                shard.obs_evictions.add(evicted);
            }
        }
        Ok(())
    }

    /// Drops every cached page. The paper flushes the cache before each of
    /// its 500 workload queries so measurements are cold.
    pub fn flush_cache(&self) {
        for shard in &self.shards {
            shard.lock_inner().clear();
        }
    }

    /// Changes the cache capacity (Fig. 10's parameter), evicting as needed.
    pub fn set_capacity(&self, capacity: usize) {
        self.capacity.store(capacity, Ordering::Relaxed);
        let per_shard = Self::shard_capacity(capacity, self.shards.len());
        for shard in &self.shards {
            let mut inner = shard.lock_inner();
            inner.capacity = per_shard;
            if per_shard == 0 {
                inner.clear();
            } else {
                let evicted = inner.evict_to_capacity();
                if evicted > 0 {
                    shard.obs_evictions.add(evicted);
                }
            }
        }
    }

    /// Current total cache capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity.load(Ordering::Relaxed)
    }

    /// Snapshot of the I/O counters, summed over all shards.
    pub fn stats(&self) -> IoStats {
        let mut total = IoStats {
            fsyncs: self.pager.fsyncs(),
            ..IoStats::default()
        };
        for shard in &self.shards {
            let s = shard.stats();
            total.logical_reads += s.logical_reads;
            total.physical_reads += s.physical_reads;
            total.writes += s.writes;
        }
        total
    }

    /// Zeroes the I/O counters (between construction and queries, and
    /// between individual queries).
    pub fn reset_stats(&self) {
        for shard in &self.shards {
            shard.logical_reads.store(0, Ordering::Relaxed);
            shard.physical_reads.store(0, Ordering::Relaxed);
            shard.writes.store(0, Ordering::Relaxed);
        }
        self.pager.reset_fsyncs();
    }

    /// Flushes the OS file buffer of the underlying pager.
    pub fn sync(&self) -> io::Result<()> {
        self.pager.sync()
    }

    /// The paper's *PA* since the last reset.
    pub fn page_accesses(&self) -> u64 {
        self.stats().page_accesses()
    }

    /// Number of allocated pages (storage size).
    pub fn num_pages(&self) -> u64 {
        self.pager.num_pages()
    }

    /// The underlying pager.
    pub fn pager(&self) -> &Pager {
        &self.pager
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    fn pool(capacity: usize) -> (TempDir, BufferPool) {
        let dir = TempDir::new("pool");
        let pager = Pager::create(&dir.path().join("p.db")).unwrap();
        (dir, BufferPool::new(pager, capacity))
    }

    fn pool_sharded(capacity: usize, shards: usize) -> (TempDir, BufferPool) {
        let dir = TempDir::new("pool-sharded");
        let pager = Pager::create(&dir.path().join("p.db")).unwrap();
        (dir, BufferPool::new_sharded(pager, capacity, shards))
    }

    #[test]
    fn cache_absorbs_repeated_reads() {
        let (_d, pool) = pool(4);
        let id = pool.allocate().unwrap();
        pool.reset_stats();
        for _ in 0..10 {
            pool.read(id).unwrap();
        }
        let s = pool.stats();
        assert_eq!(s.logical_reads, 10);
        assert_eq!(s.physical_reads, 1);
        assert_eq!(s.page_accesses(), 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let (_d, pool) = pool(0);
        let id = pool.allocate().unwrap();
        pool.reset_stats();
        for _ in 0..5 {
            pool.read(id).unwrap();
        }
        assert_eq!(pool.stats().physical_reads, 5);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let (_d, pool) = pool(2);
        let ids: Vec<PageId> = (0..3).map(|_| pool.allocate().unwrap()).collect();
        pool.flush_cache();
        pool.reset_stats();
        pool.read(ids[0]).unwrap(); // miss, cache {0}
        pool.read(ids[1]).unwrap(); // miss, cache {0,1}
        pool.read(ids[0]).unwrap(); // hit, 0 most recent
        pool.read(ids[2]).unwrap(); // miss, evicts 1
        pool.read(ids[0]).unwrap(); // hit
        pool.read(ids[1]).unwrap(); // miss again
        assert_eq!(pool.stats().physical_reads, 4);
    }

    #[test]
    fn writes_are_write_through_and_visible() {
        let (_d, pool) = pool(4);
        let id = pool.allocate().unwrap();
        let mut p = Page::new();
        p.write_u32(0, 7);
        pool.write(id, p).unwrap();
        assert_eq!(pool.read(id).unwrap().read_u32(0), 7);
        // On disk too, not just in cache:
        assert_eq!(pool.pager().read_page(id).unwrap().read_u32(0), 7);
    }

    #[test]
    fn flush_cache_forces_refetch() {
        let (_d, pool) = pool(4);
        let id = pool.allocate().unwrap();
        pool.reset_stats();
        pool.read(id).unwrap();
        pool.flush_cache();
        pool.read(id).unwrap();
        assert_eq!(pool.stats().physical_reads, 2);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let (_d, pool) = pool(8);
        let ids: Vec<PageId> = (0..6).map(|_| pool.allocate().unwrap()).collect();
        for &id in &ids {
            pool.read(id).unwrap();
        }
        pool.set_capacity(2);
        assert_eq!(pool.capacity(), 2);
        pool.reset_stats();
        // At most 2 of the 6 can still be cached.
        for &id in &ids {
            pool.read(id).unwrap();
        }
        assert!(pool.stats().physical_reads >= 4);
    }

    #[test]
    fn large_cache_eviction_is_cheap() {
        // O(log n) eviction: a pass twice the capacity over a big pool
        // stays comfortably fast (the old linear scan was quadratic).
        let (_d, pool) = pool(4096);
        let ids: Vec<PageId> = (0..8192).map(|_| pool.allocate().unwrap()).collect();
        pool.reset_stats();
        for &id in &ids {
            pool.read(id).unwrap();
        }
        assert_eq!(pool.stats().physical_reads, 8192);
    }

    #[test]
    fn sharded_pool_sums_counters_exactly() {
        let (_d, pool) = pool_sharded(16, 4);
        assert_eq!(pool.shard_count(), 4);
        let ids: Vec<PageId> = (0..12).map(|_| pool.allocate().unwrap()).collect();
        pool.flush_cache();
        pool.reset_stats();
        for &id in &ids {
            pool.read(id).unwrap(); // 12 misses
        }
        for &id in &ids {
            pool.read(id).unwrap(); // 12 hits (capacity 16 holds them all)
        }
        let total = pool.stats();
        assert_eq!(total.logical_reads, 24);
        assert_eq!(total.physical_reads, 12);
        let mut sum = IoStats::default();
        for s in 0..pool.shard_count() {
            let st = pool.shard_stats(s);
            sum.logical_reads += st.logical_reads;
            sum.physical_reads += st.physical_reads;
            sum.writes += st.writes;
        }
        assert_eq!(sum.logical_reads, total.logical_reads);
        assert_eq!(sum.physical_reads, total.physical_reads);
        assert_eq!(sum.page_accesses(), total.page_accesses());
    }

    #[test]
    fn sharded_pool_spreads_pages_across_stripes() {
        let (_d, pool) = pool_sharded(64, 4);
        let ids: Vec<PageId> = (0..16).map(|_| pool.allocate().unwrap()).collect();
        pool.flush_cache();
        pool.reset_stats();
        for &id in &ids {
            pool.read(id).unwrap();
        }
        // Sequential page ids land round-robin on the 4 shards.
        for s in 0..4 {
            assert_eq!(pool.shard_stats(s).physical_reads, 4, "shard {s}");
        }
    }

    #[test]
    fn sharded_flush_and_capacity_apply_to_all_stripes() {
        let (_d, pool) = pool_sharded(8, 2);
        let ids: Vec<PageId> = (0..8).map(|_| pool.allocate().unwrap()).collect();
        for &id in &ids {
            pool.read(id).unwrap();
        }
        pool.flush_cache();
        pool.reset_stats();
        for &id in &ids {
            pool.read(id).unwrap();
        }
        assert_eq!(pool.stats().physical_reads, 8, "flush emptied every shard");
        pool.set_capacity(0);
        pool.reset_stats();
        pool.read(ids[0]).unwrap();
        pool.read(ids[0]).unwrap();
        assert_eq!(
            pool.stats().physical_reads,
            2,
            "capacity 0 disables caching"
        );
    }
}
