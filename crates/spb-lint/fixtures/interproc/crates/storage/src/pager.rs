//! Interproc bad fixture: this file poses as the pager no-panic zone.
//! Nothing here panics locally — the defect is the call below, which
//! reaches a `.unwrap()` two hops away in `codec.rs`.

pub fn load_header(buf: &[u8]) -> u64 {
    decode_header(buf)
}
