//! Redo-only write-ahead log for SPB-tree updates.
//!
//! One logical update (insert or delete) stages its dirty pages in the
//! pagers (no-steal, see [`crate::Pager::txn_begin`]) and describes them
//! to the WAL as one transaction:
//!
//! ```text
//! Begin(txid)
//! PageImage(txid, file, page_no, image)   × dirty pages
//! MetaImage(txid, meta bytes)             (the spb.meta contents)
//! Commit(txid)
//! ```
//!
//! The frames of a transaction are buffered in memory and reach the log
//! in a single `write_all` followed by a single fsync (*group commit*):
//! the commit point is that fsync. Only after it do the staged pages go
//! to the data files. Recovery scans the log, drops a torn tail (any
//! frame that is incomplete or fails its CRC, and everything after it),
//! and redoes the page and meta images of every *committed* transaction
//! — physical redo is idempotent, so crashing during recovery is fine.
//! A checkpoint (after the data files are fsynced) truncates the log.
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload = [type: u8] [txid: u64 LE] [body]
//! ```
//!
//! Bodies: `Begin`/`Commit` — empty; `PageImage` — `[file: u8]
//! [page_no: u64 LE] [image: PAGE_SIZE bytes]`; `MetaImage` — the raw
//! meta bytes.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::checksum::crc32;
use crate::fault::{self, WritePlan};
use crate::lockrank::{self, LockRank, RankedMutexGuard};
use crate::page::PAGE_SIZE;

const TYPE_BEGIN: u8 = 1;
const TYPE_PAGE: u8 = 2;
const TYPE_META: u8 = 3;
const TYPE_COMMIT: u8 = 4;

/// Frames larger than this are rejected as corruption when scanning
/// (the largest legal payload is a page image: 9 + 9 + PAGE_SIZE bytes;
/// meta images are far smaller than a page).
const MAX_PAYLOAD: usize = 64 * 1024;

/// Group-commit batch size in bytes (one sample per [`Wal::commit`]).
fn commit_bytes_hist() -> &'static Arc<spb_obs::Histogram> {
    static H: OnceLock<Arc<spb_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| spb_obs::histogram("wal.commit_bytes"))
}

/// The `phase.wal_fsync` histogram: write + fsync latency of one group
/// commit (nanoseconds).
fn wal_fsync_hist() -> &'static Arc<spb_obs::Histogram> {
    static H: OnceLock<Arc<spb_obs::Histogram>> = OnceLock::new();
    H.get_or_init(|| spb_obs::histogram("phase.wal_fsync"))
}

/// Which data file a [`WalRecord::PageImage`] belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalFileTag {
    /// The B⁺-tree file (`btree.db`).
    BTree,
    /// The random access file (`spb.raf`).
    Raf,
}

impl WalFileTag {
    fn to_byte(self) -> u8 {
        match self {
            WalFileTag::BTree => 0,
            WalFileTag::Raf => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(WalFileTag::BTree),
            1 => Some(WalFileTag::Raf),
            // spb-lint: allow(catch-all) — any other byte is log corruption;
            // the decoder treats the frame as the end of the valid prefix.
            _ => None,
        }
    }
}

/// One decoded WAL record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WalRecord {
    /// Start of transaction `txid`.
    Begin {
        /// Transaction id.
        txid: u64,
    },
    /// Physical after-image of one page.
    PageImage {
        /// Transaction id.
        txid: u64,
        /// Which data file the page belongs to.
        file: WalFileTag,
        /// Page number within that file.
        page_no: u64,
        /// Full page image (the pager re-stamps the CRC footer on redo).
        image: Box<[u8; PAGE_SIZE]>,
    },
    /// After-image of the tree's meta file.
    MetaImage {
        /// Transaction id.
        txid: u64,
        /// The new meta contents.
        bytes: Vec<u8>,
    },
    /// Commit point of transaction `txid` (durable once this frame is
    /// fsynced).
    Commit {
        /// Transaction id.
        txid: u64,
    },
}

impl WalRecord {
    /// The record's transaction id.
    pub fn txid(&self) -> u64 {
        match *self {
            WalRecord::Begin { txid }
            | WalRecord::PageImage { txid, .. }
            | WalRecord::MetaImage { txid, .. }
            | WalRecord::Commit { txid } => txid,
        }
    }
}

/// Encodes `record` as one framed WAL entry (length + CRC + payload).
pub fn encode_record(record: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    match record {
        WalRecord::Begin { txid } => {
            payload.push(TYPE_BEGIN);
            payload.extend_from_slice(&txid.to_le_bytes());
        }
        WalRecord::PageImage {
            txid,
            file,
            page_no,
            image,
        } => {
            payload.push(TYPE_PAGE);
            payload.extend_from_slice(&txid.to_le_bytes());
            payload.push(file.to_byte());
            payload.extend_from_slice(&page_no.to_le_bytes());
            payload.extend_from_slice(image.as_slice());
        }
        WalRecord::MetaImage { txid, bytes } => {
            payload.push(TYPE_META);
            payload.extend_from_slice(&txid.to_le_bytes());
            payload.extend_from_slice(bytes);
        }
        WalRecord::Commit { txid } => {
            payload.push(TYPE_COMMIT);
            payload.extend_from_slice(&txid.to_le_bytes());
        }
    }
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Decodes one framed record from the front of `bytes`. Returns the
/// record and the number of bytes consumed, or `None` if the front of
/// `bytes` is not a complete, checksum-valid frame (a torn tail).
pub fn decode_record(bytes: &[u8]) -> Option<(WalRecord, usize)> {
    let len = u32::from_le_bytes(bytes.get(0..4)?.try_into().ok()?) as usize;
    if !(9..=MAX_PAYLOAD).contains(&len) {
        return None;
    }
    let stored_crc = u32::from_le_bytes(bytes.get(4..8)?.try_into().ok()?);
    let payload = bytes.get(8..8 + len)?;
    if crc32(payload) != stored_crc {
        return None;
    }
    let (&rtype, rest) = payload.split_first()?;
    let txid = u64::from_le_bytes(rest.get(0..8)?.try_into().ok()?);
    let body = rest.get(8..)?;
    let record = match rtype {
        TYPE_BEGIN if body.is_empty() => WalRecord::Begin { txid },
        TYPE_COMMIT if body.is_empty() => WalRecord::Commit { txid },
        TYPE_PAGE if body.len() == 1 + 8 + PAGE_SIZE => {
            let (&tag, rest) = body.split_first()?;
            let file = WalFileTag::from_byte(tag)?;
            let page_no = u64::from_le_bytes(rest.get(0..8)?.try_into().ok()?);
            let mut image = Box::new([0u8; PAGE_SIZE]);
            image.copy_from_slice(rest.get(8..)?);
            WalRecord::PageImage {
                txid,
                file,
                page_no,
                image,
            }
        }
        TYPE_META => WalRecord::MetaImage {
            txid,
            bytes: body.to_vec(),
        },
        // spb-lint: allow(catch-all) — an unknown type byte in a CRC-valid
        // frame is a log written by a different format version; recovery
        // must stop here exactly as for a torn tail rather than guess at
        // the record's meaning.
        _ => return None,
    };
    Some((record, 8 + len))
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Every record in the valid prefix, in log order.
    pub records: Vec<WalRecord>,
    /// Length in bytes of the valid prefix.
    pub valid_len: u64,
    /// Bytes beyond the valid prefix (a torn tail to truncate).
    pub torn_bytes: u64,
}

impl WalScan {
    /// Transaction ids with a `Commit` record, in commit order.
    pub fn committed_txids(&self) -> Vec<u64> {
        self.records
            .iter()
            .filter_map(|r| match r {
                WalRecord::Commit { txid } => Some(*txid),
                _ => None,
            })
            .collect()
    }
}

/// A streaming, frame-at-a-time reader over a byte range of the log,
/// created by [`Wal::segment_reader`]. Each frame is CRC-checked as it
/// is decoded; iteration stops cleanly at the end of the segment or at
/// the first invalid frame (which, inside the committed prefix, means
/// on-disk corruption). This is the replication read path: a replica
/// resumes from its applied LSN and ships whole frames, where before
/// this reader the replay logic was only reachable through recovery.
#[derive(Debug)]
pub struct WalSegmentReader {
    buf: Vec<u8>,
    base_lsn: u64,
    pos: usize,
}

impl WalSegmentReader {
    /// Absolute log offset (LSN) of the next frame to decode.
    pub fn lsn(&self) -> u64 {
        self.base_lsn + self.pos as u64
    }

    /// Absolute log offset one past the last byte of the segment.
    pub fn end_lsn(&self) -> u64 {
        self.base_lsn + self.buf.len() as u64
    }

    /// Consumes the reader and returns `(frames, next_lsn)`: the raw
    /// bytes of every remaining complete, CRC-valid frame, plus the LSN
    /// one past them. This is what a `WalShip` reply carries — the
    /// receiver re-checks every frame's CRC when it applies them.
    pub fn into_valid_prefix(mut self) -> (Vec<u8>, u64) {
        let start = self.pos;
        while let Some((_, consumed)) = self.buf.get(self.pos..).and_then(decode_record) {
            self.pos += consumed;
        }
        let next_lsn = self.lsn();
        let frames = self.buf.get(start..self.pos).unwrap_or_default().to_vec();
        (frames, next_lsn)
    }
}

impl Iterator for WalSegmentReader {
    type Item = (u64, WalRecord);

    fn next(&mut self) -> Option<(u64, WalRecord)> {
        let at = self.lsn();
        let (record, consumed) = self.buf.get(self.pos..).and_then(decode_record)?;
        self.pos += consumed;
        Some((at, record))
    }
}

/// The write-ahead log file.
pub struct Wal {
    file: Mutex<File>,
    path: PathBuf,
    /// Frames of the open transaction, not yet written.
    pending: Mutex<Vec<u8>>,
    /// Monotonic transaction-id source (reset when the log is truncated).
    next_txid: AtomicU64,
    fsyncs: AtomicU64,
    len: AtomicU64,
}

impl Wal {
    /// The only way to take the log-file mutex: registers the
    /// acquisition at [`LockRank::Wal`] so debug builds catch
    /// latch-ordering violations (`spb-lint` rejects direct locking).
    fn lock_file(&self) -> RankedMutexGuard<'_, File> {
        lockrank::lock(&self.file, LockRank::Wal)
    }

    /// Ranked counterpart of `lock_file` for the pending-frames buffer
    /// (same rank: the two are never held together).
    fn lock_pending(&self) -> RankedMutexGuard<'_, Vec<u8>> {
        lockrank::lock(&self.pending, LockRank::Wal)
    }

    /// Opens the WAL at `path`, creating it if missing. The caller is
    /// responsible for scanning and truncating a pre-existing log before
    /// appending (see [`Wal::scan_file`] and [`Wal::truncate_to`]).
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        Ok(Wal {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            pending: Mutex::new(Vec::new()),
            next_txid: AtomicU64::new(1),
            fsyncs: AtomicU64::new(0),
            len: AtomicU64::new(len),
        })
    }

    /// Scans the WAL file at `path` (which need not exist — an empty
    /// scan results). Stops at the first torn or corrupt frame.
    pub fn scan_file(path: &Path) -> io::Result<WalScan> {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let mut records = Vec::new();
        let mut pos = 0usize;
        while let Some((record, consumed)) = bytes.get(pos..).and_then(decode_record) {
            records.push(record);
            pos += consumed;
        }
        Ok(WalScan {
            records,
            valid_len: pos as u64,
            torn_bytes: (bytes.len() - pos) as u64,
        })
    }

    /// Truncates the file to `len` bytes (drops a torn tail found by
    /// [`Wal::scan_file`]) and fsyncs.
    pub fn truncate_to(&self, len: u64) -> io::Result<()> {
        let file = self.lock_file();
        file.set_len(len)?;
        fault::on_sync(&self.path)?;
        file.sync_all()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.len.store(len, Ordering::SeqCst);
        Ok(())
    }

    /// Empties the log — the checkpoint step after the data files have
    /// been fsynced.
    pub fn reset(&self) -> io::Result<()> {
        self.truncate_to(0)?;
        self.next_txid.store(1, Ordering::SeqCst);
        Ok(())
    }

    /// Starts a transaction: allocates a txid and buffers its `Begin`
    /// frame. Nothing reaches the file before [`Wal::commit`].
    ///
    /// # Errors
    /// Fails if a transaction is already buffered (WAL transactions do
    /// not nest).
    pub fn begin(&self) -> io::Result<u64> {
        let txid = self.next_txid.fetch_add(1, Ordering::SeqCst);
        let mut pending = self.lock_pending();
        if !pending.is_empty() {
            return Err(io::Error::other("nested WAL transaction"));
        }
        pending.extend_from_slice(&encode_record(&WalRecord::Begin { txid }));
        Ok(txid)
    }

    /// Buffers a page after-image for the open transaction.
    pub fn log_page(&self, txid: u64, file: WalFileTag, page_no: u64, image: &[u8; PAGE_SIZE]) {
        let record = WalRecord::PageImage {
            txid,
            file,
            page_no,
            image: Box::new(*image),
        };
        self.lock_pending()
            .extend_from_slice(&encode_record(&record));
    }

    /// Buffers a meta after-image for the open transaction.
    pub fn log_meta(&self, txid: u64, bytes: &[u8]) {
        let record = WalRecord::MetaImage {
            txid,
            bytes: bytes.to_vec(),
        };
        self.lock_pending()
            .extend_from_slice(&encode_record(&record));
    }

    /// Commits: appends the buffered frames plus the `Commit` frame in
    /// one write and fsyncs once (group commit). On return the
    /// transaction is durable.
    pub fn commit(&self, txid: u64) -> io::Result<()> {
        let mut buffer = {
            let mut pending = self.lock_pending();
            std::mem::take(&mut *pending)
        };
        buffer.extend_from_slice(&encode_record(&WalRecord::Commit { txid }));
        commit_bytes_hist().record(buffer.len() as u64);

        let fsync_start = spb_obs::clock::now();
        let mut file = self.lock_file();
        file.seek(SeekFrom::Start(self.len.load(Ordering::SeqCst)))?;
        match fault::on_write(&self.path, &buffer) {
            WritePlan::Proceed => file.write_all(&buffer)?,
            WritePlan::CrashAfterWriting(torn) => {
                file.write_all(&torn)?;
                let _ = file.sync_all();
                return Err(fault::injected_crash());
            }
            WritePlan::Crash => return Err(fault::injected_crash()),
        }
        fault::on_sync(&self.path)?;
        file.sync_all()?;
        wal_fsync_hist().record(spb_obs::clock::nanos_since(fsync_start));
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        self.len.fetch_add(buffer.len() as u64, Ordering::SeqCst);
        Ok(())
    }

    /// Opens a streaming reader over the committed log bytes starting at
    /// `from_lsn` (a byte offset previously returned by [`Wal::len`] or
    /// [`WalSegmentReader::lsn`]; `0` reads from the start). The segment
    /// is capped at the current committed length, which group commit
    /// only advances by whole transactions, so a reader never observes a
    /// partial frame or a partial transaction.
    ///
    /// # Errors
    /// Fails with `InvalidInput` when `from_lsn` lies beyond the current
    /// log length — the log was reset by a checkpoint since the caller
    /// last read, and the caller must re-bootstrap instead of resuming.
    pub fn segment_reader(&self, from_lsn: u64) -> io::Result<WalSegmentReader> {
        let end = self.len();
        if from_lsn > end {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("segment start {from_lsn} beyond log end {end} (log was reset)"),
            ));
        }
        let mut buf = vec![0u8; (end - from_lsn) as usize];
        if !buf.is_empty() {
            let mut file = self.lock_file();
            file.seek(SeekFrom::Start(from_lsn))?;
            file.read_exact(&mut buf)?;
        }
        Ok(WalSegmentReader {
            buf,
            base_lsn: from_lsn,
            pos: 0,
        })
    }

    /// Drops the buffered frames of the open transaction (rollback —
    /// nothing was written).
    pub fn abort(&self) {
        self.lock_pending().clear();
    }

    /// Current log size in bytes (drives checkpoint scheduling).
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::SeqCst)
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// fsyncs performed by the log so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Zeroes the fsync counter.
    pub fn reset_fsyncs(&self) {
        self.fsyncs.store(0, Ordering::Relaxed);
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;
    use proptest::prelude::*;

    fn page_image(fill: u8) -> Box<[u8; PAGE_SIZE]> {
        Box::new([fill; PAGE_SIZE])
    }

    #[test]
    fn commit_then_scan_roundtrip() {
        let dir = TempDir::new("wal-roundtrip");
        let wal = Wal::open(&dir.path().join("spb.wal")).unwrap();
        let t1 = wal.begin().unwrap();
        wal.log_page(t1, WalFileTag::BTree, 3, &page_image(0x11));
        wal.log_meta(t1, b"len=1\n");
        wal.commit(t1).unwrap();
        let t2 = wal.begin().unwrap();
        wal.log_page(t2, WalFileTag::Raf, 0, &page_image(0x22));
        wal.commit(t2).unwrap();
        assert_eq!(wal.fsyncs(), 2);

        let scan = Wal::scan_file(&dir.path().join("spb.wal")).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.valid_len, wal.len());
        assert_eq!(scan.committed_txids(), vec![t1, t2]);
        assert_eq!(scan.records.len(), 7);
        assert!(matches!(scan.records[0], WalRecord::Begin { txid } if txid == t1));
        assert!(matches!(
            &scan.records[1],
            WalRecord::PageImage {
                file: WalFileTag::BTree,
                page_no: 3,
                ..
            }
        ));
    }

    #[test]
    fn aborted_transactions_never_reach_the_file() {
        let dir = TempDir::new("wal-abort");
        let path = dir.path().join("spb.wal");
        let wal = Wal::open(&path).unwrap();
        let t1 = wal.begin().unwrap();
        wal.log_page(t1, WalFileTag::BTree, 0, &page_image(1));
        wal.abort();
        let t2 = wal.begin().unwrap();
        wal.log_meta(t2, b"m");
        wal.commit(t2).unwrap();

        let scan = Wal::scan_file(&path).unwrap();
        assert_eq!(scan.committed_txids(), vec![t2]);
        assert!(scan.records.iter().all(|r| r.txid() == t2));
    }

    #[test]
    fn torn_tail_is_detected_and_truncatable() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("spb.wal");
        let wal = Wal::open(&path).unwrap();
        let t1 = wal.begin().unwrap();
        wal.log_page(t1, WalFileTag::BTree, 1, &page_image(9));
        wal.commit(t1).unwrap();
        let good_len = wal.len();
        drop(wal);

        // Simulate a torn group-commit: half a frame of a second txn.
        let tail = encode_record(&WalRecord::Begin { txid: 2 });
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&tail[..tail.len() / 2]);
        std::fs::write(&path, &bytes).unwrap();

        let scan = Wal::scan_file(&path).unwrap();
        assert_eq!(scan.valid_len, good_len);
        assert!(scan.torn_bytes > 0);
        assert_eq!(scan.committed_txids(), vec![t1]);

        let wal = Wal::open(&path).unwrap();
        wal.truncate_to(scan.valid_len).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        let rescan = Wal::scan_file(&path).unwrap();
        assert_eq!(rescan.torn_bytes, 0);
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = TempDir::new("wal-reset");
        let path = dir.path().join("spb.wal");
        let wal = Wal::open(&path).unwrap();
        let t = wal.begin().unwrap();
        wal.commit(t).unwrap();
        assert!(!wal.is_empty());
        wal.reset().unwrap();
        assert!(wal.is_empty());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        assert_eq!(Wal::scan_file(&path).unwrap().records.len(), 0);
    }

    #[test]
    fn segment_reader_streams_frames_and_resumes_from_an_lsn() {
        let dir = TempDir::new("wal-segment");
        let wal = Wal::open(&dir.path().join("spb.wal")).unwrap();
        let t1 = wal.begin().unwrap();
        wal.log_page(t1, WalFileTag::BTree, 3, &page_image(0x11));
        wal.commit(t1).unwrap();
        let mid = wal.len();
        let t2 = wal.begin().unwrap();
        wal.log_meta(t2, b"len=2\n");
        wal.commit(t2).unwrap();

        // Full scan from 0: same records as scan_file, with LSNs that
        // advance by exactly one frame per record.
        let reader = wal.segment_reader(0).unwrap();
        assert_eq!(reader.lsn(), 0);
        assert_eq!(reader.end_lsn(), wal.len());
        let streamed: Vec<(u64, WalRecord)> = reader.collect();
        let scan = Wal::scan_file(wal.path()).unwrap();
        assert_eq!(
            streamed.iter().map(|(_, r)| r.clone()).collect::<Vec<_>>(),
            scan.records
        );
        let mut expect_lsn = 0;
        for ((at, r), raw) in streamed.iter().zip(scan.records.iter().map(encode_record)) {
            assert_eq!(*at, expect_lsn, "{r:?} at wrong LSN");
            expect_lsn += raw.len() as u64;
        }

        // Resume from the first transaction's end: only t2's frames.
        let resumed: Vec<(u64, WalRecord)> = wal.segment_reader(mid).unwrap().collect();
        assert_eq!(resumed.len(), 3);
        assert!(resumed.iter().all(|(_, r)| r.txid() == t2));
        assert_eq!(resumed.first().map(|(at, _)| *at), Some(mid));

        // Caught up: an empty reader. Beyond the end: a typed error.
        assert_eq!(wal.segment_reader(wal.len()).unwrap().count(), 0);
        let err = wal.segment_reader(wal.len() + 1).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn segment_reader_valid_prefix_matches_raw_log_bytes() {
        let dir = TempDir::new("wal-segment-raw");
        let wal = Wal::open(&dir.path().join("spb.wal")).unwrap();
        let t1 = wal.begin().unwrap();
        wal.log_page(t1, WalFileTag::Raf, 0, &page_image(0x42));
        wal.commit(t1).unwrap();
        let mid = wal.len();
        let t2 = wal.begin().unwrap();
        wal.log_meta(t2, b"m");
        wal.commit(t2).unwrap();

        let (frames, next_lsn) = wal.segment_reader(mid).unwrap().into_valid_prefix();
        assert_eq!(next_lsn, wal.len());
        let raw = std::fs::read(wal.path()).unwrap();
        assert_eq!(frames, raw[mid as usize..]);

        // Shipped frames decode standalone, like any valid log prefix.
        let mut pos = 0;
        let mut txids = Vec::new();
        while let Some((r, n)) = decode_record(&frames[pos..]) {
            txids.push(r.txid());
            pos += n;
        }
        assert_eq!(pos, frames.len());
        assert!(txids.iter().all(|&t| t == t2));
    }

    fn record_strategy() -> impl Strategy<Value = WalRecord> {
        prop_oneof![
            any::<u64>().prop_map(|txid| WalRecord::Begin { txid }),
            any::<u64>().prop_map(|txid| WalRecord::Commit { txid }),
            (any::<u64>(), any::<bool>(), any::<u64>(), any::<u8>()).prop_map(
                |(txid, btree, page_no, fill)| WalRecord::PageImage {
                    txid,
                    file: if btree {
                        WalFileTag::BTree
                    } else {
                        WalFileTag::Raf
                    },
                    page_no,
                    image: Box::new([fill; PAGE_SIZE]),
                }
            ),
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200))
                .prop_map(|(txid, bytes)| WalRecord::MetaImage { txid, bytes }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn encode_decode_roundtrip(records in proptest::collection::vec(record_strategy(), 1..12)) {
            let mut stream = Vec::new();
            for r in &records {
                stream.extend_from_slice(&encode_record(r));
            }
            let mut decoded = Vec::new();
            let mut pos = 0;
            while let Some((r, n)) = decode_record(&stream[pos..]) {
                decoded.push(r);
                pos += n;
            }
            prop_assert_eq!(pos, stream.len());
            prop_assert_eq!(decoded, records);
        }

        #[test]
        fn truncated_tail_never_decodes(record in record_strategy(), cut in 0usize..100) {
            let frame = encode_record(&record);
            // Any strict prefix fails to decode (torn tail detection).
            let cut = cut % frame.len();
            prop_assert!(decode_record(&frame[..cut]).is_none());
        }

        #[test]
        fn corrupt_frames_never_decode(record in record_strategy(), pos in 0usize..5000, bit in 0u8..8) {
            let mut frame = encode_record(&record);
            let pos = pos % frame.len();
            frame[pos] ^= 1 << bit;
            // A flipped bit anywhere kills the frame: either the length
            // no longer matches (decode sees a short/oversized frame) or
            // the CRC fails. It must never decode to the original.
            match decode_record(&frame) {
                None => {}
                Some((r, _)) => prop_assert_ne!(r, record),
            }
        }
    }
}
