//! Interproc bad fixture: the blocking site lives one hop below the
//! helper the event loop reaches for.

pub fn ship_segment(lsn: u64) -> u64 {
    read_wal(lsn)
}

fn read_wal(lsn: u64) -> u64 {
    let mut buf = [0u8; 8];
    wal_file().read_exact(&mut buf).ok();
    u64::from_le_bytes(buf) + lsn
}
