//! Table 6 bench: bulk-construction time of each MAM.

use criterion::{criterion_group, criterion_main, Criterion};
use spb_bench::Scale;
use spb_core::{SpbConfig, SpbTree};
use spb_mams::{MIndex, MIndexParams, MTree, MTreeParams, OmniParams, OmniRTree};
use spb_metric::dataset;
use spb_storage::TempDir;

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let data = dataset::color(scale.color(), scale.seed());
    let metric = dataset::color_metric;
    let mut group = c.benchmark_group("table6_construction");
    group.sample_size(10);
    group.bench_function("mtree_color", |b| {
        b.iter(|| {
            let dir = TempDir::new("bench-t6-mtree");
            MTree::build(dir.path(), &data, metric(), &MTreeParams::default())
                .unwrap()
                .len()
        })
    });
    group.bench_function("omni_color", |b| {
        b.iter(|| {
            let dir = TempDir::new("bench-t6-omni");
            OmniRTree::build(dir.path(), &data, metric(), &OmniParams::default())
                .unwrap()
                .len()
        })
    });
    group.bench_function("mindex_color", |b| {
        b.iter(|| {
            let dir = TempDir::new("bench-t6-mindex");
            MIndex::build(dir.path(), &data, metric(), &MIndexParams::default())
                .unwrap()
                .len()
        })
    });
    group.bench_function("spb_color", |b| {
        b.iter(|| {
            let dir = TempDir::new("bench-t6-spb");
            SpbTree::build(dir.path(), &data, metric(), &SpbConfig::default())
                .unwrap()
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
