//! # The SPB-tree
//!
//! The **S**pace-filling curve and **P**ivot-based **B**⁺-tree (Chen, Gao,
//! Li, Jensen, Chen: *Efficient Metric Indexing for Similarity Search*,
//! ICDE 2015, and its similarity-join extension) — a disk-based metric
//! access method built from three parts (Fig. 4):
//!
//! 1. a **pivot table** mapping objects `o` of a generic metric space to
//!    vectors `φ(o) = ⟨d(o, p₁), …, d(o, p_|P|)⟩`, whose `L∞` distance
//!    lower-bounds the metric distance;
//! 2. a **B⁺-tree** over the space-filling-curve values of the
//!    δ-discretised vectors, with per-subtree MBBs in its internal entries;
//! 3. a **random access file (RAF)** storing the objects themselves in
//!    ascending SFC order.
//!
//! Supported operations, each matching a numbered algorithm of the paper:
//!
//! | Operation | Paper | Entry point |
//! |---|---|---|
//! | Bulk-loading | Appendix B | [`SpbTree::build`] |
//! | Insertion / deletion | Appendix C | [`SpbTree::insert`], [`SpbTree::delete`] |
//! | Range query (RQA) | Algorithm 1 | [`SpbTree::range`] |
//! | kNN query (NNA) | Algorithm 2 | [`SpbTree::knn`] |
//! | Similarity join (SJA) | Algorithm 3 | [`similarity_join`] |
//! | Batch queries (parallel) | extension | [`SpbTree::range_batch`], [`SpbTree::knn_batch`] |
//! | Parallel join | extension | [`similarity_join_parallel`] |
//! | Cost models | eqs. 1–8 | [`CostModel`] |
//! | Count-only range query | extension | [`SpbTree::range_count`] |
//! | α-approximate kNN | extension | [`SpbTree::knn_approx`] |
//! | Learned positioning + recall-targeted search | extension | [`AccelPolicy`], [`SpbTree::range_approx`], [`SpbTree::tune_knn_alpha`] |
//! | Persistence | — | [`SpbTree::open`] |
//! | Crash recovery | extension | [`recover_dir`] (run by `open`) |
//! | Integrity check | extension | [`verify_dir`] |
//!
//! ## Durability
//!
//! Updates are crash-safe by default: each insert/delete stages its dirty
//! pages in memory, commits them through a checksummed write-ahead log
//! with one fsync, and only then writes the data files. Reopening an
//! index replays any committed-but-unapplied transactions and discards
//! torn tails. [`SpbConfig::durability`] turns the WAL off (for
//! benchmarking its cost); [`verify_dir`] audits an index offline.
//!
//! ## Example
//!
//! ```
//! use spb_core::{SpbConfig, SpbTree};
//! use spb_metric::{dataset, EditDistance};
//! use spb_storage::TempDir;
//!
//! let dir = TempDir::new("spb-doc");
//! let words = dataset::words(1000, 42);
//! let tree = SpbTree::build(dir.path(), &words, EditDistance::default(),
//!                           &SpbConfig::default()).unwrap();
//!
//! // All words within edit distance 2 of a query word:
//! let (hits, stats) = tree.range(&words[0], 2.0).unwrap();
//! assert!(hits.iter().any(|(_, w)| w == &words[0]));
//! assert!(stats.compdists < 1000, "pivots must prune most comparisons");
//!
//! // The 5 most similar words:
//! let (nn, _) = tree.knn(&words[0], 5).unwrap();
//! assert_eq!(nn.len(), 5);
//! assert_eq!(nn[0].2, 0.0); // the word itself
//! ```

#![forbid(unsafe_code)]

mod batch;
mod config;
mod cost;
mod count;
mod exec;
mod join;
mod knn;
mod mapping;
mod partition;
mod range;
mod recovery;
mod stats;
mod tree;

pub use batch::{KnnBatch, RangeBatch};
pub use config::SpbConfig;
pub use cost::{CostEstimate, CostModel};
pub use exec::{parallel_map, WorkerPool};
pub use join::{similarity_join, similarity_join_parallel, JoinPair};
pub use knn::{KnnResult, Traversal};
pub use mapping::{PivotTable, SfcMbbOps};
pub use partition::{plan_shards, shard_mind, ShardPlan, ShardSpec};
pub use recovery::{recover_dir, verify_dir, RecoveryReport, VerifyProblem, VerifyReport};
pub use spb_accel::{AccelPolicy, LeafModel, Positioning, QueryMode, Tuned};
pub use tree::{BuildStats, QueryStats, SpbTree};
