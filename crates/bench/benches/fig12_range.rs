//! Fig. 12 bench: range-query latency (r = 8% of d⁺) for all four MAMs.

use criterion::{criterion_group, criterion_main, Criterion};
use spb_bench::experiments::common::build_suite;
use spb_bench::Scale;
use spb_metric::{dataset, Distance};

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let data = dataset::signature(scale.signature(), scale.seed());
    let metric = dataset::signature_metric();
    let r = metric.max_distance() * 0.08;
    let suite = build_suite("bench-f12", &data, metric);
    let mut group = c.benchmark_group("fig12_range");
    group.sample_size(20);
    {
        let mut i = 0usize;
        group.bench_function("range8_mtree", |b| {
            b.iter(|| {
                suite.mtree.flush_caches();
                let q = &data[i % 100];
                i += 1;
                suite.mtree.range(q, r).unwrap().0.len()
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("range8_omni", |b| {
            b.iter(|| {
                suite.omni.flush_caches();
                let q = &data[i % 100];
                i += 1;
                suite.omni.range(q, r).unwrap().0.len()
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("range8_mindex", |b| {
            b.iter(|| {
                suite.mindex.flush_caches();
                let q = &data[i % 100];
                i += 1;
                suite.mindex.range(q, r).unwrap().0.len()
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("range8_spb", |b| {
            b.iter(|| {
                suite.spb.flush_caches();
                let q = &data[i % 100];
                i += 1;
                suite.spb.range(q, r).unwrap().0.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
