//! Figs. 15–16 bench: cost-model evaluation speed (the point of a cost
//! model is to be orders of magnitude cheaper than running the query).

use criterion::{criterion_group, criterion_main, Criterion};
use spb_bench::experiments::common::build_spb;
use spb_bench::Scale;
use spb_core::SpbConfig;
use spb_metric::{dataset, Distance};

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let data = dataset::color(scale.color(), scale.seed());
    let metric = dataset::color_metric();
    let r = metric.max_distance() * 0.08;
    let (_dir, tree) = build_spb("bench-f15", &data, metric, &SpbConfig::default());
    let q_phis: Vec<Vec<f64>> = data[..100]
        .iter()
        .map(|q| tree.table().phi(tree.metric().inner(), q))
        .collect();

    let mut group = c.benchmark_group("fig15_16_costmodel");
    group.sample_size(30);
    {
        let mut i = 0usize;
        group.bench_function("estimate_range", |b| {
            b.iter(|| {
                let q = &q_phis[i % q_phis.len()];
                i += 1;
                tree.cost_model().estimate_range(q, r)
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("estimate_knn", |b| {
            b.iter(|| {
                let q = &q_phis[i % q_phis.len()];
                i += 1;
                tree.cost_model().estimate_knn(q, 8)
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("prob_in_rr_incl_excl", |b| {
            b.iter(|| {
                let q = &q_phis[i % q_phis.len()];
                i += 1;
                tree.cost_model().prob_in_rr_incl_excl(q, r)
            })
        });
    }
    {
        let mut i = 0usize;
        group.bench_function("actual_range_query", |b| {
            b.iter(|| {
                tree.flush_caches();
                let q = &data[i % 100];
                i += 1;
                tree.range(q, r).unwrap().0.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
