//! CLI entry point: `cargo run -p spb-lint [-- --deny-all] [--root DIR]`.
//!
//! Prints one `path:line: [rule] message` diagnostic per finding and
//! exits non-zero iff any deny-level finding exists (`--deny-all`
//! promotes warn-level rules, which is how CI runs it).

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = spb_lint::Config::repo_default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-all" => cfg.deny_all = true,
            "--root" => match args.next() {
                Some(dir) => cfg.root = PathBuf::from(dir),
                None => {
                    eprintln!("spb-lint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "spb-lint: workspace static analysis\n\n\
                     USAGE: spb-lint [--deny-all] [--root DIR]\n\n\
                     --deny-all   promote warn-level rules (dead-variant) to deny\n\
                     --root DIR   scan DIR instead of this workspace\n\n\
                     Rules: no-panic, no-unsafe, lock-order, catch-all, dead-variant,\n\
                     bad-allow. See DESIGN.md §10 for the catalog and the allow-marker\n\
                     grammar."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("spb-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let report = spb_lint::run(&cfg);
    let mut denied = 0usize;
    let mut warned = 0usize;
    for v in &report.violations {
        if v.rule.denied(cfg.deny_all) {
            denied += 1;
            eprintln!("{v}");
        } else {
            warned += 1;
            eprintln!("warning: {v}");
        }
    }
    eprintln!(
        "spb-lint: {} file(s) scanned, {} error(s), {} warning(s)",
        report.files_scanned, denied, warned
    );
    if denied > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
