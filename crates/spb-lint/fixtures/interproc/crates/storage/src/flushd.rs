//! Interproc bad fixture: a rank-30 → rank-20 descent across the call
//! graph (`flush_all` holds the pending-set lock while `evict` takes a
//! shard latch), plus the rank cycle it closes against `refill`'s
//! legal 20 → 30 edge.

pub struct Flushd;

impl Flushd {
    pub fn flush_all(&self) {
        let _pending = self.lock_pending();
        self.evict();
    }

    pub fn refill(&self) {
        let _inner = self.lock_inner();
        self.journal();
    }

    fn evict(&self) {
        let _inner = self.lock_inner();
    }

    fn journal(&self) {
        let _pending = self.lock_pending();
    }
}
