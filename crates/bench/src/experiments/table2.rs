//! Table 2 — statistics of the datasets: cardinality, intrinsic
//! dimensionality `ρ = µ²/(2σ²)`, metric, and the precision of 5 HFI
//! pivots.

use spb_metric::{dataset, Distance, MetricObject};
use spb_metric::{intrinsic_dimensionality, pairwise_distance_sample};
use spb_pivots::{precision, select_pivots, PivotConfig, PivotMethod};

use crate::runner::fmt_num;
use crate::{Scale, Table};

fn stats_row<O: MetricObject, D: Distance<O>>(
    name: &str,
    data: &[O],
    metric: &D,
    measurement: &str,
) -> Vec<String> {
    let sample = pairwise_distance_sample(data, metric, 4000, 7);
    let rho = intrinsic_dimensionality(&sample);
    let pivots = select_pivots(PivotMethod::Hfi, data, metric, 5, &PivotConfig::default());
    let prec = precision(data, metric, &pivots, 1000, 11);
    vec![
        name.to_owned(),
        data.len().to_string(),
        fmt_num(rho),
        measurement.to_owned(),
        format!("{prec:.3}"),
    ]
}

/// Reproduces Table 2 at the given scale.
pub fn run(scale: Scale) {
    let seed = scale.seed();
    let mut t = Table::new(
        "Table 2: statistics of the datasets used (paper: Ins. 4.9 / 2.9 / 6.9 / 14.8 / 4.76)",
        &[
            "Dataset",
            "Cardinality",
            "Ins.",
            "Measurement",
            "Prec(5 pivots)",
        ],
    );
    {
        let d = dataset::words(scale.words(), seed);
        t.row(stats_row(
            "Words",
            &d,
            &dataset::words_metric(),
            "Edit distance",
        ));
    }
    {
        let d = dataset::color(scale.color(), seed);
        t.row(stats_row("Color", &d, &dataset::color_metric(), "L5-norm"));
    }
    {
        let d = dataset::dna(scale.dna(), seed);
        t.row(stats_row(
            "DNA",
            &d,
            &dataset::dna_metric(),
            "Angular tri-gram",
        ));
    }
    {
        let d = dataset::signature(scale.signature(), seed);
        t.row(stats_row(
            "Signature",
            &d,
            &dataset::signature_metric(),
            "Hamming",
        ));
    }
    {
        let d = dataset::synthetic(scale.synthetic(), seed);
        t.row(stats_row(
            "Synthetic",
            &d,
            &dataset::synthetic_metric(),
            "L2-norm",
        ));
    }
    t.print();
}
