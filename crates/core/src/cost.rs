//! Cost models for similarity queries and joins (Sections 4.4 and 5.3).
//!
//! The models estimate the two query cost components:
//!
//! * **EDC** — the expected number of distance computations (eq. 3 for
//!   range queries, eq. 5 feeding eq. 3 for kNN, eq. 7 for joins);
//! * **EPA** — the expected number of page accesses (eq. 6 for similarity
//!   queries, eq. 8 for joins).
//!
//! The statistics behind them are gathered for free during construction,
//! when every `d(o, pᵢ)` is computed anyway: per-pivot distance histograms
//! (`F_pᵢ`, eq. 1) and a reservoir sample of mapped vectors representing
//! the *union distance distribution* (`F(r₁,…,r_|P|)`, eq. 2), plus an
//! in-memory mirror of all node MBBs for the `Σ I(Mᵢ)` term of eq. 6.
//!
//! `Pr(φ(o) ∈ RR(q, r))` is computed both directly (count sample vectors
//! inside the box) and via the paper's inclusion–exclusion expansion of the
//! joint CDF (eq. 4); tests assert the two agree.

use std::io;
use std::sync::Mutex;

use spb_bptree::{BPlusTree, Mbb};
use spb_metric::{DistanceHistogram, MetricObject};
use spb_storage::Raf;

use crate::config::SpbConfig;
use crate::mapping::{PivotTable, SfcMbbOps};

/// An estimated query cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostEstimate {
    /// Estimated number of distance computations (EDC).
    pub compdists: f64,
    /// Estimated number of page accesses (EPA).
    pub page_accesses: f64,
}

impl CostEstimate {
    /// The paper's accuracy measure: `1 − |actual − estimated| / actual`
    /// (Figs. 15–18). Returns 1.0 when both are zero.
    pub fn accuracy(actual: f64, estimated: f64) -> f64 {
        if actual == 0.0 {
            return if estimated == 0.0 { 1.0 } else { 0.0 };
        }
        1.0 - (actual - estimated).abs() / actual
    }
}

/// One step of a 64-bit LCG (Knuth's MMIX constants) — the deterministic
/// randomness source for the reservoir (no RNG dependency, reproducible).
fn lcg(x: u64) -> u64 {
    x.wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407)
}

struct Inner {
    /// Per-pivot distance distributions `F_pᵢ` (eq. 1).
    hists: Vec<DistanceHistogram>,
    /// Sampled mapped vectors — the union distance distribution (eq. 2).
    sample: Vec<Vec<f64>>,
    /// Sample capacity.
    cap: usize,
    /// Objects indexed.
    num_objects: u64,
    /// Insertions seen since construction (drives reservoir replacement).
    seen: u64,
}

/// The cost model attached to one SPB-tree.
pub struct CostModel {
    inner: Mutex<Inner>,
    /// Node MBBs in metric units: `(lo, hi)` per node, where an object in
    /// the node has `d(o, pᵢ) ∈ [loᵢ, hiᵢ]`.
    node_boxes: Vec<(Vec<f64>, Vec<f64>)>,
    /// Average objects per RAF page (`f` of eqs. 6 and 8).
    objects_per_page: f64,
    /// B⁺-tree leaf pages (`|SPB|` of eq. 8).
    leaf_pages: u64,
    num_pivots: usize,
    d_plus: f64,
    /// Mean pivot-set precision (Definition 1) measured on a small pair
    /// sample at construction; calibrates the query-sensitive `eND_k`.
    precision: f64,
    /// δ-approximation granularity: the model counts candidates by grid
    /// cell, exactly as the algorithms do (the paper's "−1" in eq. 4).
    delta: f64,
    /// Whether the metric is discrete (tight cell lower edges).
    discrete: bool,
}

impl CostModel {
    /// Gathers the model during construction. `phis` iterates the mapped
    /// vector of every indexed object (already computed by the build).
    pub(crate) fn from_build<'a, O: MetricObject>(
        table: &PivotTable<O>,
        phis: impl Iterator<Item = &'a [f64]>,
        btree: &BPlusTree<SfcMbbOps>,
        raf: &Raf,
        config: &SpbConfig,
        precision: f64,
    ) -> io::Result<Self> {
        let p = table.num_pivots();
        let mut hists: Vec<DistanceHistogram> = (0..p)
            .map(|_| {
                DistanceHistogram::new(
                    table.d_plus().max(f64::MIN_POSITIVE),
                    config.histogram_buckets,
                )
            })
            .collect();
        let mut sample: Vec<Vec<f64>> = Vec::with_capacity(config.cost_sample);
        let mut n: u64 = 0;
        let mut rng_state: u64 = 0x5bb5_c0de;
        for phi in phis {
            for (h, &d) in hists.iter_mut().zip(phi) {
                h.record(d);
            }
            // Reservoir sampling (Algorithm R) with a deterministic LCG:
            // the φ stream arrives in SFC order, so anything short of a
            // uniform reservoir would be spatially biased and skew every
            // Pr(φ(o) ∈ RR) estimate.
            if sample.len() < config.cost_sample {
                sample.push(phi.to_vec());
            } else {
                rng_state = lcg(rng_state);
                let j = (rng_state >> 16) % (n + 1);
                if (j as usize) < config.cost_sample {
                    sample[j as usize] = phi.to_vec();
                }
            }
            n += 1;
        }

        // In-memory MBB mirror, converted to metric units once.
        let ops = *btree.ops();
        let to_metric = |mbb: Mbb| {
            let bx = ops.to_box(mbb);
            let lo: Vec<f64> = bx.lo().iter().map(|&c| table.cell_dist_lo(c)).collect();
            let hi: Vec<f64> = bx.hi().iter().map(|&c| table.cell_dist_hi(c)).collect();
            (lo, hi)
        };
        let node_boxes: Vec<(Vec<f64>, Vec<f64>)> =
            btree.all_node_mbbs()?.into_iter().map(to_metric).collect();

        Ok(CostModel {
            inner: Mutex::new(Inner {
                hists,
                sample,
                cap: config.cost_sample,
                num_objects: n,
                seen: n,
            }),
            node_boxes,
            objects_per_page: raf.objects_per_page(n.max(1)),
            leaf_pages: btree.num_leaf_pages()?,
            num_pivots: p,
            d_plus: table.d_plus(),
            precision: precision.clamp(0.05, 1.0),
            delta: table.delta(),
            discrete: table.is_discrete(),
        })
    }

    /// Keeps the statistics current across insertions.
    pub(crate) fn record_insert(&self, phi: &[f64]) {
        let mut inner = self.inner.lock().expect("cost model lock");
        for (h, &d) in inner.hists.iter_mut().zip(phi) {
            h.record(d);
        }
        inner.num_objects += 1;
        inner.seen += 1;
        if inner.sample.len() < inner.cap {
            inner.sample.push(phi.to_vec());
        } else {
            // Continue the deterministic reservoir over insertions.
            let cap = inner.cap;
            let j = (lcg(inner.seen.wrapping_mul(0x9e37_79b9)) >> 16) % inner.seen;
            if (j as usize) < cap {
                inner.sample[j as usize] = phi.to_vec();
            }
        }
    }

    /// Notes one deletion. Histograms keep the deleted observation (they
    /// are statistical, and removal from a histogram is ill-posed); only
    /// the object count shrinks, which is what the EDC formulas scale by.
    pub(crate) fn record_delete(&self) {
        let mut inner = self.inner.lock().expect("cost model lock");
        inner.num_objects = inner.num_objects.saturating_sub(1);
    }

    /// Number of objects the model currently describes.
    pub fn num_objects(&self) -> u64 {
        self.inner.lock().expect("cost model lock").num_objects
    }

    /// `f`: average objects per RAF page.
    pub fn objects_per_page(&self) -> f64 {
        self.objects_per_page
    }

    /// `Pr(φ(o) ∈ RR(q, r))` by direct counting over the vector sample,
    /// at the δ-cell granularity the query algorithms verify at: an object
    /// is a candidate iff its grid cell intersects the rounded region
    /// `[⌊(d(q,pᵢ)−r)/δ⌋, ⌊(d(q,pᵢ)+r)/δ⌋]` — the paper's integer
    /// formulation of eq. 4 (`lᵢ = d(q,pᵢ) − r − 1`).
    pub fn prob_in_rr(&self, q_phi: &[f64], r: f64) -> f64 {
        let inner = self.inner.lock().expect("cost model lock");
        if inner.sample.is_empty() {
            return 0.0;
        }
        let delta = self.delta;
        let discrete = self.discrete;
        let hits = inner
            .sample
            .iter()
            .filter(|phi| {
                phi.iter().zip(q_phi).all(|(&d, &qd)| {
                    let cell = (d / delta).floor();
                    let edge = (qd - r) / delta;
                    let lo = if discrete { edge.ceil() } else { edge.floor() }.max(0.0);
                    let hi = ((qd + r) / delta).floor();
                    cell >= lo && cell <= hi
                })
            })
            .count();
        hits as f64 / inner.sample.len() as f64
    }

    /// `Pr(φ(o) ∈ RR(q, r))` via the paper's inclusion–exclusion over the
    /// joint CDF (eq. 4). Exponential in `|P|`; fine for the paper's
    /// `|P| ≤ 9`. Agrees with [`prob_in_rr`](Self::prob_in_rr) exactly —
    /// kept for fidelity to the paper and as a cross-check.
    pub fn prob_in_rr_incl_excl(&self, q_phi: &[f64], r: f64) -> f64 {
        let inner = self.inner.lock().expect("cost model lock");
        if inner.sample.is_empty() {
            return 0.0;
        }
        let p = self.num_pivots;
        let delta = self.delta;
        // Cell-granular region edges (the paper's integer eq. 4).
        let lo: Vec<f64> = q_phi
            .iter()
            .map(|&d| {
                let edge = (d - r) / delta;
                if self.discrete {
                    edge.ceil()
                } else {
                    edge.floor()
                }
                .max(0.0)
            })
            .collect();
        let hi: Vec<f64> = q_phi.iter().map(|&d| ((d + r) / delta).floor()).collect();
        let mut acc = 0.0f64;
        for mask in 0u32..(1 << p) {
            // F(b₁,…,b_p) with bᵢ = lᵢ − 1 (strict below the low cell) for
            // i ∈ mask, else uᵢ (inclusive up to the high cell).
            let count = inner
                .sample
                .iter()
                .filter(|phi| {
                    phi.iter().enumerate().all(|(i, &d)| {
                        let cell = (d / delta).floor();
                        if mask & (1 << i) != 0 {
                            cell < lo[i]
                        } else {
                            cell <= hi[i]
                        }
                    })
                })
                .count();
            let sign = if mask.count_ones() % 2 == 0 {
                1.0
            } else {
                -1.0
            };
            acc += sign * count as f64;
        }
        (acc / inner.sample.len() as f64).clamp(0.0, 1.0)
    }

    /// EDC and EPA for a range query `RQ(q, O, r)` (eqs. 3, 4 and 6).
    pub fn estimate_range(&self, q_phi: &[f64], r: f64) -> CostEstimate {
        let n = self.num_objects() as f64;
        let prob = self.prob_in_rr(q_phi, r);
        let edc = self.num_pivots as f64 + n * prob;
        let touched_nodes = self
            .node_boxes
            .iter()
            .filter(|(lo, hi)| {
                lo.iter()
                    .zip(hi)
                    .zip(q_phi)
                    .all(|((&l, &h), &qd)| l <= qd + r && h >= qd - r)
            })
            .count() as f64;
        CostEstimate {
            compdists: edc,
            page_accesses: touched_nodes + edc / self.objects_per_page,
        }
    }

    /// The estimated k-th NN distance `eND_k`.
    ///
    /// Query-sensitive estimator: invert the union distance distribution —
    /// find the smallest `r` whose mapped range region is expected to hold
    /// `k` objects (`|O| · Pr(φ(o) ∈ RR(q, r)) ≥ k`, the count the EDC
    /// model itself uses), then divide by the pivot-set precision to map
    /// the lower-bound radius back to metric units. This refines eq. 5:
    /// the paper's `F_q ≈ F_pᵢ` homogeneity assumption (kept as
    /// [`estimate_nd_k_homogeneous`](Self::estimate_nd_k_homogeneous))
    /// misfires when pivots are hull outliers far from every query.
    pub fn estimate_nd_k(&self, q_phi: &[f64], k: u64) -> f64 {
        let n = self.num_objects();
        if n == 0 {
            return self.d_plus;
        }
        let sample_len = {
            let inner = self.inner.lock().expect("cost model lock");
            inner.sample.len().max(1)
        };
        // Binary search the smallest RR radius expected to cover k objects.
        // Requiring at least two sample hits guards against the query's own
        // vector sitting in the sample (a self-hit would drive the radius
        // to zero whenever k ≤ n / |sample|).
        let min_prob = (k as f64 / n as f64).max(2.0 / sample_len as f64);
        let (mut lo, mut hi) = (0.0f64, self.d_plus);
        for _ in 0..32 {
            let mid = 0.5 * (lo + hi);
            if self.prob_in_rr(q_phi, mid) >= min_prob {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let query_sensitive = (hi / self.precision).min(self.d_plus);
        // Blend with the paper's eq. 5 (geometric mean): the inversion is
        // query-local but resolution-limited, eq. 5 has full resolution but
        // assumes viewpoint homogeneity; their geometric mean tracks the
        // true ND_k better than either alone across the evaluated datasets.
        let homogeneous = self.estimate_nd_k_homogeneous(q_phi, k);
        if homogeneous > 0.0 && query_sensitive > 0.0 {
            (query_sensitive * homogeneous).sqrt().min(self.d_plus)
        } else {
            query_sensitive.max(homogeneous).min(self.d_plus)
        }
    }

    /// The paper's eq. 5 verbatim: `eND_k` from the nearest pivot's
    /// distance distribution under the homogeneity-of-viewpoints
    /// assumption (`F_q ≈ F_pᵢ` for the pivot nearest to `q`).
    pub fn estimate_nd_k_homogeneous(&self, q_phi: &[f64], k: u64) -> f64 {
        let inner = self.inner.lock().expect("cost model lock");
        let nearest = q_phi
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        inner.hists[nearest]
            .quantile_radius(inner.num_objects, k)
            .min(self.d_plus)
    }

    /// The calibration precision in use.
    pub fn precision(&self) -> f64 {
        self.precision
    }

    /// EDC and EPA for a kNN query (eq. 5 into eqs. 3 and 6).
    pub fn estimate_knn(&self, q_phi: &[f64], k: u64) -> CostEstimate {
        let r = self.estimate_nd_k(q_phi, k);
        self.estimate_range(q_phi, r)
    }

    /// EDC and EPA for a similarity join `SJ(Q, O, ε)` (eqs. 7 and 8).
    /// `self` models `Q`; `other` models `O`. The sum over `q ∈ Q` of
    /// eq. 7 is approximated by averaging over `Q`'s vector sample.
    pub fn estimate_join(&self, other: &CostModel, eps: f64) -> CostEstimate {
        let n_q = self.num_objects() as f64;
        let n_o = other.num_objects() as f64;
        let mean_prob = {
            let inner = self.inner.lock().expect("cost model lock");
            if inner.sample.is_empty() {
                0.0
            } else {
                // Cap the outer sample: 500 × |other sample| stays cheap.
                let take = inner.sample.len().min(500);
                let step = (inner.sample.len() / take).max(1);
                let qs: Vec<&Vec<f64>> = inner.sample.iter().step_by(step).take(take).collect();
                let total: f64 = qs.iter().map(|q| other.prob_in_rr(q, eps)).sum();
                total / qs.len() as f64
            }
        };
        let edc = n_q * n_o * mean_prob;
        let epa = self.leaf_pages as f64
            + other.leaf_pages as f64
            + n_q / self.objects_per_page
            + n_o / other.objects_per_page;
        CostEstimate {
            compdists: edc,
            page_accesses: epa,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SpbConfig;
    use crate::cost::CostEstimate;
    use crate::tree::SpbTree;
    use spb_metric::dataset;
    use spb_storage::TempDir;

    #[test]
    fn incl_excl_equals_direct_counting() {
        let data = dataset::color(800, 61);
        let dir = TempDir::new("cost-ie");
        let tree = SpbTree::build(
            dir.path(),
            &data,
            dataset::color_metric(),
            &SpbConfig::default(),
        )
        .unwrap();
        let cm = tree.cost_model();
        for q in data.iter().take(10) {
            let q_phi = tree.table().phi(tree.metric().inner(), q);
            for r in [0.01, 0.05, 0.2, 0.8] {
                let direct = cm.prob_in_rr(&q_phi, r);
                let ie = cm.prob_in_rr_incl_excl(&q_phi, r);
                assert!(
                    (direct - ie).abs() < 1e-9,
                    "eq.4 must match direct counting: {direct} vs {ie} (r={r})"
                );
            }
        }
    }

    #[test]
    fn range_estimates_track_actuals() {
        let data = dataset::color(3000, 62);
        let dir = TempDir::new("cost-range");
        let tree = SpbTree::build(
            dir.path(),
            &data,
            dataset::color_metric(),
            &SpbConfig::default(),
        )
        .unwrap();
        let cm = tree.cost_model();
        let d_plus = tree.table().d_plus();
        let mut total_acc = 0.0;
        let mut n = 0;
        for q in data.iter().take(20) {
            let q_phi = tree.table().phi(tree.metric().inner(), q);
            let r = 0.08 * d_plus;
            let est = cm.estimate_range(&q_phi, r);
            tree.flush_caches();
            let (_, actual) = tree.range(q, r).unwrap();
            total_acc += CostEstimate::accuracy(actual.compdists as f64, est.compdists);
            n += 1;
        }
        let avg = total_acc / n as f64;
        // The paper reports > 80% average accuracy; allow slack for the
        // smaller sample sizes used in unit tests.
        assert!(avg > 0.6, "average EDC accuracy too low: {avg}");
    }

    #[test]
    fn knn_radius_estimate_is_sane() {
        let data = dataset::words(2000, 63);
        let dir = TempDir::new("cost-knn");
        let tree = SpbTree::build(
            dir.path(),
            &data,
            dataset::words_metric(),
            &SpbConfig::default(),
        )
        .unwrap();
        let cm = tree.cost_model();
        let q = &data[3];
        let q_phi = tree.table().phi(tree.metric().inner(), q);
        let r1 = cm.estimate_nd_k(&q_phi, 1);
        let r8 = cm.estimate_nd_k(&q_phi, 8);
        let r100 = cm.estimate_nd_k(&q_phi, 100);
        assert!(r1 <= r8 && r8 <= r100, "eND_k must grow with k");
        assert!(r100 <= tree.table().d_plus());
        let est = cm.estimate_knn(&q_phi, 8);
        assert!(est.compdists >= tree.table().num_pivots() as f64);
        assert!(est.page_accesses > 0.0);
    }

    #[test]
    fn join_estimate_has_both_terms() {
        let a = dataset::color(600, 64);
        let b = dataset::color(600, 65);
        let (d1, d2) = (TempDir::new("cost-j1"), TempDir::new("cost-j2"));
        let cfg = SpbConfig::for_join();
        let ta = SpbTree::build(d1.path(), &a, dataset::color_metric(), &cfg).unwrap();
        let tb = SpbTree::build_with_pivots(
            d2.path(),
            &b,
            dataset::color_metric(),
            ta.table().pivots().to_vec(),
            &cfg,
            0,
        )
        .unwrap();
        let est = ta.cost_model().estimate_join(tb.cost_model(), 0.05);
        assert!(est.compdists > 0.0);
        // EPA is at least the four fixed file-scan terms of eq. 8.
        assert!(est.page_accesses >= 4.0);
        // Larger eps can only increase EDC.
        let est2 = ta.cost_model().estimate_join(tb.cost_model(), 0.15);
        assert!(est2.compdists >= est.compdists);
    }

    #[test]
    fn accuracy_measure_definition() {
        assert_eq!(CostEstimate::accuracy(100.0, 100.0), 1.0);
        assert!((CostEstimate::accuracy(100.0, 80.0) - 0.8).abs() < 1e-12);
        assert!((CostEstimate::accuracy(100.0, 120.0) - 0.8).abs() < 1e-12);
        assert_eq!(CostEstimate::accuracy(0.0, 0.0), 1.0);
        assert_eq!(CostEstimate::accuracy(0.0, 5.0), 0.0);
    }

    #[test]
    fn model_follows_insertions() {
        let data = dataset::words(300, 66);
        let dir = TempDir::new("cost-ins");
        let tree = SpbTree::build(
            dir.path(),
            &data,
            dataset::words_metric(),
            &SpbConfig::default(),
        )
        .unwrap();
        let before = tree.cost_model().num_objects();
        let extra = dataset::words(50, 67);
        for w in &extra {
            tree.insert(w).unwrap();
        }
        assert_eq!(tree.cost_model().num_objects(), before + 50);
    }
}
