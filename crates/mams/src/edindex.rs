//! The eD-index (Dohnal, Gennaro & Zezula, DEXA 2003) — the index-based
//! similarity-join baseline of Fig. 17.
//!
//! The D-index hashes objects through levels of **ρ-split functions**: a
//! ball-partitioning split `bps_{x, dm, ρ}(o)` maps `o` to `0` when
//! `d(o, x) ≤ dm − ρ`, to `1` when `d(o, x) > dm + ρ`, and to the
//! *exclusion set* otherwise. Combining `m` splits yields `2^m` separable
//! buckets per level — objects in different buckets of one level are more
//! than `2ρ` apart. Exclusion objects cascade to the next level; the last
//! level's exclusion forms a final bucket.
//!
//! The **eD-index** extension *overloads* the exclusion set for joins:
//! every bucketed object whose split distance falls within ε of a
//! boundary is **also copied** into the exclusion set, so any pair within
//! `ε ≤ 2ρ` meets in some bucket. The similarity join then scans each
//! bucket once with a sliding window over the stored pivot distances.
//!
//! Two properties of the original are faithfully reproduced (and visible
//! in Fig. 17):
//!
//! * ε is fixed **at build time** — larger query thresholds require a
//!   rebuild ([`EdIndex::join`] rejects `eps > build ε`);
//! * overloading duplicates objects, so the join re-reads duplicated
//!   pages ("lots of duplicated page accesses", Section 6.4).

use std::collections::HashSet;
use std::io;
use std::path::Path;
use std::time::Instant;

use rand::prelude::*;
use rand::rngs::StdRng;

use spb_core::{BuildStats, QueryStats};

/// A similarity-join result: `(q_id, o_id, distance)` triples plus stats.
type JoinResult = io::Result<(Vec<(u32, u32, f64)>, QueryStats)>;
use spb_metric::{CountingDistance, DistCounter, Distance, MetricObject};
use spb_storage::{BufferPool, Page, PageId, Pager, PAGE_DATA_SIZE, PAGE_SIZE};

/// eD-index tuning parameters.
#[derive(Clone, Copy, Debug)]
pub struct EdIndexParams {
    /// Number of hash levels.
    pub levels: usize,
    /// ρ-split functions per level (`2^m` buckets each).
    pub splits_per_level: usize,
    /// The exclusion-zone half-width ρ. Join thresholds up to `2ρ` are
    /// supported; the default ties ρ to ε at build.
    pub rho: f64,
    /// The build-time join threshold ε (the eD-index's hard limit).
    pub eps: f64,
    /// Page-cache capacity.
    pub cache_pages: usize,
    /// RNG seed for pivot choice.
    pub seed: u64,
}

impl EdIndexParams {
    /// Sensible defaults for a build-time threshold `eps`.
    pub fn for_eps(eps: f64) -> Self {
        EdIndexParams {
            levels: 4,
            splits_per_level: 3,
            rho: eps.max(f64::MIN_POSITIVE),
            eps,
            cache_pages: 32,
            seed: 0xed1d,
        }
    }
}

struct BucketMeta {
    start: PageId,
    bytes: u64,
    count: u32,
}

/// One stored (possibly duplicated) object instance.
struct StoredEntry<O> {
    from_q: bool,
    id: u32,
    pivot_dist: f64,
    obj: O,
}

/// A disk-based eD-index over two tagged sets, supporting similarity joins
/// up to the build-time ε.
pub struct EdIndex<O: MetricObject, D: Distance<O>> {
    metric: CountingDistance<D>,
    counter: DistCounter,
    pool: BufferPool,
    buckets: Vec<BucketMeta>,
    eps_build: f64,
    stored_instances: u64,
    build_stats: BuildStats,
    _marker: std::marker::PhantomData<O>,
}

impl<O: MetricObject, D: Distance<O>> EdIndex<O, D> {
    /// Builds an eD-index over the tagged union of `q_set` and `o_set` in
    /// `dir/edindex.db`.
    pub fn build(
        dir: &Path,
        q_set: &[O],
        o_set: &[O],
        metric: D,
        params: &EdIndexParams,
    ) -> io::Result<Self> {
        assert!(
            params.eps <= 2.0 * params.rho + 1e-12,
            "the eD-index requires eps <= 2*rho (separability)"
        );
        std::fs::create_dir_all(dir)?;
        let start = Instant::now();
        let counter = DistCounter::new();
        let metric = CountingDistance::with_counter(metric, counter.clone());
        let pool = BufferPool::new(Pager::create(&dir.join("edindex.db"))?, params.cache_pages);
        let meta = pool.allocate()?;
        debug_assert_eq!(meta, PageId(0));

        // The working set: (tag, id, pivot_dist) triples; `pivot_dist` is
        // the distance to the current level's first split pivot.
        struct Work {
            from_q: bool,
            id: u32,
            pivot_dist: f64,
        }
        let obj = |w: &Work| -> &O {
            if w.from_q {
                &q_set[w.id as usize]
            } else {
                &o_set[w.id as usize]
            }
        };
        let mut current: Vec<Work> = (0..q_set.len() as u32)
            .map(|i| Work {
                from_q: true,
                id: i,
                pivot_dist: 0.0,
            })
            .chain((0..o_set.len() as u32).map(|i| Work {
                from_q: false,
                id: i,
                pivot_dist: 0.0,
            }))
            .collect();

        let mut rng = StdRng::seed_from_u64(params.seed);
        let mut buckets: Vec<BucketMeta> = Vec::new();
        let mut stored_instances: u64 = 0;
        let write_bucket = |entries: &[(&Work, f64)],
                            pool: &BufferPool,
                            stored: &mut u64|
         -> io::Result<Option<BucketMeta>> {
            if entries.is_empty() {
                return Ok(None);
            }
            let mut bytes: Vec<u8> = Vec::new();
            for (w, d) in entries {
                let ob = obj(w).encoded();
                bytes.push(w.from_q as u8);
                bytes.extend_from_slice(&w.id.to_le_bytes());
                bytes.extend_from_slice(&d.to_le_bytes());
                bytes.extend_from_slice(&(ob.len() as u32).to_le_bytes());
                bytes.extend_from_slice(&ob);
            }
            *stored += entries.len() as u64;
            let mut start: Option<PageId> = None;
            for chunk in bytes.chunks(PAGE_DATA_SIZE) {
                let page_id = pool.allocate()?;
                if start.is_none() {
                    start = Some(page_id);
                }
                let mut p = Page::new();
                p.write_slice(0, chunk);
                pool.write(page_id, p)?;
            }
            Ok(Some(BucketMeta {
                start: start.expect("at least one page"),
                bytes: bytes.len() as u64,
                count: entries.len() as u32,
            }))
        };

        for _level in 0..params.levels {
            if current.len() <= 8 {
                break; // too few for useful splitting; final bucket below
            }
            // ρ-split functions: random pivots, median dm.
            let m = params.splits_per_level.min(8);
            let pivot_objs: Vec<O> = (0..m)
                .map(|_| {
                    let w = &current[rng.gen_range(0..current.len())];
                    obj(w).clone()
                })
                .collect();
            // Distance matrix: dists[s][i] = d(current[i], pivot s).
            let dists: Vec<Vec<f64>> = pivot_objs
                .iter()
                .map(|p| current.iter().map(|w| metric.distance(obj(w), p)).collect())
                .collect();
            let dms: Vec<f64> = dists
                .iter()
                .map(|row| {
                    let mut v = row.clone();
                    v.sort_by(f64::total_cmp);
                    v[v.len() / 2]
                })
                .collect();

            // Assign each object to a bucket / the exclusion set, with
            // ε-overloading duplication.
            let mut level_buckets: Vec<Vec<(usize, f64)>> = vec![Vec::new(); 1 << m];
            let mut exclusion: Vec<usize> = Vec::new();
            for (i, _w) in current.iter().enumerate() {
                let mut code = 0usize;
                let mut excluded = false;
                let mut near_boundary = false;
                for s in 0..m {
                    let d = dists[s][i];
                    let (dm, rho, eps) = (dms[s], params.rho, params.eps);
                    if d <= dm - rho {
                        code <<= 1; // bit 0
                        if d > dm - rho - eps {
                            near_boundary = true;
                        }
                    } else if d > dm + rho {
                        code = (code << 1) | 1;
                        if d <= dm + rho + eps {
                            near_boundary = true;
                        }
                    } else {
                        excluded = true;
                        break;
                    }
                }
                if excluded {
                    exclusion.push(i);
                } else {
                    level_buckets[code].push((i, dists[0][i]));
                    if near_boundary {
                        exclusion.push(i); // ε-overloading duplication
                    }
                }
            }
            // Persist this level's buckets.
            for bucket in &level_buckets {
                let entries: Vec<(&Work, f64)> =
                    bucket.iter().map(|&(i, d)| (&current[i], d)).collect();
                if let Some(meta) = write_bucket(&entries, &pool, &mut stored_instances)? {
                    buckets.push(meta);
                }
            }
            // Cascade the exclusion set, remembering the first split
            // distance for the final bucket's sliding window.
            let next: Vec<Work> = exclusion
                .into_iter()
                .map(|i| Work {
                    from_q: current[i].from_q,
                    id: current[i].id,
                    pivot_dist: dists[0][i],
                })
                .collect();
            current = next;
        }
        // Final exclusion bucket.
        {
            let entries: Vec<(&Work, f64)> = current.iter().map(|w| (w, w.pivot_dist)).collect();
            if let Some(meta) = write_bucket(&entries, &pool, &mut stored_instances)? {
                buckets.push(meta);
            }
        }

        let build_stats = BuildStats {
            compdists: counter.get(),
            pivot_compdists: 0,
            page_accesses: pool.stats().page_accesses(),
            duration: start.elapsed(),
            storage_bytes: pool.num_pages() * PAGE_SIZE as u64,
            num_objects: (q_set.len() + o_set.len()) as u64,
        };
        pool.reset_stats();
        counter.reset();

        Ok(EdIndex {
            metric,
            counter,
            pool,
            buckets,
            eps_build: params.eps,
            stored_instances,
            build_stats,
            _marker: std::marker::PhantomData,
        })
    }

    fn read_bucket(&self, meta: &BucketMeta) -> io::Result<Vec<StoredEntry<O>>> {
        let mut bytes = vec![0u8; meta.bytes as usize];
        let mut filled = 0usize;
        let mut page_no = meta.start.0;
        while filled < bytes.len() {
            let take = (bytes.len() - filled).min(PAGE_DATA_SIZE);
            let p = self.pool.read(PageId(page_no))?;
            bytes[filled..filled + take].copy_from_slice(p.read_slice(0, take));
            filled += take;
            page_no += 1;
        }
        let mut out = Vec::with_capacity(meta.count as usize);
        let mut off = 0usize;
        for _ in 0..meta.count {
            let from_q = bytes[off] != 0;
            let id = u32::from_le_bytes(bytes[off + 1..off + 5].try_into().expect("4"));
            let pivot_dist = f64::from_le_bytes(bytes[off + 5..off + 13].try_into().expect("8"));
            let len = u32::from_le_bytes(bytes[off + 13..off + 17].try_into().expect("4")) as usize;
            let obj = O::decode(&bytes[off + 17..off + 17 + len]);
            out.push(StoredEntry {
                from_q,
                id,
                pivot_dist,
                obj,
            });
            off += 17 + len;
        }
        Ok(out)
    }

    /// `SJ(Q, O, eps)` for `eps ≤` the build-time ε: one sliding-window
    /// scan per bucket, deduplicating pairs found through overloaded
    /// copies.
    ///
    /// # Panics
    /// Panics when `eps` exceeds the build-time ε (the original eD-index
    /// must be rebuilt for larger thresholds; Fig. 17 relies on this
    /// limitation).
    pub fn join(&self, eps: f64) -> JoinResult {
        assert!(
            eps <= self.eps_build + 1e-12,
            "eD-index was built for eps <= {}, got {eps}; rebuild required",
            self.eps_build
        );
        let snap = (self.counter.get(), self.pool.stats(), Instant::now());
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        let mut out = Vec::new();
        for meta in &self.buckets {
            let mut entries = self.read_bucket(meta)?;
            entries.sort_by(|a, b| a.pivot_dist.total_cmp(&b.pivot_dist));
            for i in 0..entries.len() {
                for j in i + 1..entries.len() {
                    // Sliding window on the stored pivot distance.
                    if entries[j].pivot_dist - entries[i].pivot_dist > eps {
                        break;
                    }
                    let (a, b) = (&entries[i], &entries[j]);
                    if a.from_q == b.from_q {
                        continue;
                    }
                    let (qi, oi) = if a.from_q { (a.id, b.id) } else { (b.id, a.id) };
                    if seen.contains(&(qi, oi)) {
                        continue;
                    }
                    let d = self.metric.distance(&a.obj, &b.obj);
                    if d <= eps {
                        seen.insert((qi, oi));
                        out.push((qi, oi, d));
                    }
                }
            }
        }
        let (c0, io0, t0) = snap;
        let io1 = self.pool.stats();
        let pa = io1.page_accesses() - io0.page_accesses();
        Ok((
            out,
            QueryStats {
                compdists: self.counter.since(c0),
                page_accesses: pa,
                btree_pa: pa,
                raf_pa: 0,
                fsyncs: 0,
                duration: t0.elapsed(),
                recall: None,
            },
        ))
    }

    /// Construction costs.
    pub fn build_stats(&self) -> BuildStats {
        self.build_stats
    }

    /// Total storage in bytes (inflated by overloading duplicates).
    pub fn storage_bytes(&self) -> u64 {
        self.pool.num_pages() * PAGE_SIZE as u64
    }

    /// Stored object instances, counting overloaded duplicates.
    pub fn stored_instances(&self) -> u64 {
        self.stored_instances
    }

    /// The build-time ε limit.
    pub fn eps_build(&self) -> f64 {
        self.eps_build
    }

    /// Flushes the page cache.
    pub fn flush_caches(&self) {
        self.pool.flush_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spb_metric::dataset;
    use spb_metric::Distance;
    use spb_storage::TempDir;

    fn brute<O: MetricObject, D: Distance<O>>(
        q: &[O],
        o: &[O],
        metric: &D,
        eps: f64,
    ) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for (i, a) in q.iter().enumerate() {
            for (j, b) in o.iter().enumerate() {
                if metric.distance(a, b) <= eps {
                    pairs.push((i as u32, j as u32));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    #[test]
    fn join_matches_bruteforce_words() {
        let q = dataset::words(250, 111);
        let o = dataset::words(250, 112);
        let m = dataset::words_metric();
        for eps in [1.0, 2.0] {
            let dir = TempDir::new("ed-words");
            let idx = EdIndex::build(dir.path(), &q, &o, m, &EdIndexParams::for_eps(eps)).unwrap();
            idx.flush_caches();
            let (pairs, stats) = idx.join(eps).unwrap();
            let mut got: Vec<(u32, u32)> = pairs.iter().map(|&(a, b, _)| (a, b)).collect();
            got.sort_unstable();
            assert_eq!(got, brute(&q, &o, &m, eps), "eps={eps}");
            assert!(stats.page_accesses > 0);
        }
    }

    #[test]
    fn join_matches_bruteforce_color() {
        let q = dataset::color(250, 113);
        let o = dataset::color(250, 114);
        let m = dataset::color_metric();
        let eps = 0.05;
        let dir = TempDir::new("ed-color");
        let idx = EdIndex::build(dir.path(), &q, &o, m, &EdIndexParams::for_eps(eps)).unwrap();
        let (pairs, _) = idx.join(eps).unwrap();
        let mut got: Vec<(u32, u32)> = pairs.iter().map(|&(a, b, _)| (a, b)).collect();
        got.sort_unstable();
        assert_eq!(got, brute(&q, &o, &m, eps));
    }

    #[test]
    fn smaller_query_eps_is_allowed() {
        let q = dataset::words(100, 115);
        let o = dataset::words(100, 116);
        let m = dataset::words_metric();
        let dir = TempDir::new("ed-smaller");
        let idx = EdIndex::build(dir.path(), &q, &o, m, &EdIndexParams::for_eps(3.0)).unwrap();
        let (pairs, _) = idx.join(1.0).unwrap();
        let mut got: Vec<(u32, u32)> = pairs.iter().map(|&(a, b, _)| (a, b)).collect();
        got.sort_unstable();
        assert_eq!(got, brute(&q, &o, &dataset::words_metric(), 1.0));
    }

    #[test]
    #[should_panic(expected = "rebuild required")]
    fn larger_query_eps_is_rejected() {
        let q = dataset::words(50, 117);
        let o = dataset::words(50, 118);
        let dir = TempDir::new("ed-reject");
        let idx = EdIndex::build(
            dir.path(),
            &q,
            &o,
            dataset::words_metric(),
            &EdIndexParams::for_eps(1.0),
        )
        .unwrap();
        let _ = idx.join(2.0);
    }

    #[test]
    fn overloading_duplicates_storage() {
        let q = dataset::color(400, 119);
        let o = dataset::color(400, 120);
        let dir = TempDir::new("ed-dup");
        let idx = EdIndex::build(
            dir.path(),
            &q,
            &o,
            dataset::color_metric(),
            &EdIndexParams::for_eps(0.1),
        )
        .unwrap();
        assert!(
            idx.stored_instances() > 800,
            "overloading must duplicate some instances: {}",
            idx.stored_instances()
        );
    }
}
