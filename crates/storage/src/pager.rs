//! A file of fixed-size pages with checksums, fault hooks and staging.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::checksum::crc32;
use crate::fault::{self, WritePlan};
use crate::page::{Page, PageId, PAGE_SIZE};

/// Storage-level corruption detected by the checksum layer. Surfaces as
/// the inner error of an [`io::Error`] with kind `InvalidData`; use
/// [`is_corrupt`] to classify without string matching.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageCorrupt {
    /// File the bad page was read from.
    pub file: PathBuf,
    /// Page number within the file.
    pub page: u64,
    /// CRC stored in the page footer.
    pub stored: u32,
    /// CRC computed over the page's data area.
    pub computed: u32,
}

impl std::fmt::Display for StorageCorrupt {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "page {} of {} is corrupt: footer CRC {:#010x}, computed {:#010x}",
            self.page,
            self.file.display(),
            self.stored,
            self.computed
        )
    }
}

impl std::error::Error for StorageCorrupt {}

/// A read or write of a page number outside the allocated range — a
/// dangling page reference, i.e. structural corruption of whatever node
/// pointed there. Surfaces as the inner error of an [`io::Error`] with
/// kind `InvalidData`; use [`is_bad_page_ref`] to classify.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BadPageRef {
    /// File the reference pointed into.
    pub file: PathBuf,
    /// The out-of-range page number.
    pub page: u64,
    /// Number of pages actually allocated.
    pub num_pages: u64,
}

impl std::fmt::Display for BadPageRef {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "reference to unallocated page {} of {} ({} pages allocated)",
            self.page,
            self.file.display(),
            self.num_pages
        )
    }
}

impl std::error::Error for BadPageRef {}

/// Whether `err` (at any wrapping depth) is a dangling-page-reference
/// error.
pub fn is_bad_page_ref(err: &io::Error) -> bool {
    classify(err, |e| e.is::<BadPageRef>())
}

/// Whether `err` (at any wrapping depth) is a checksum-corruption error.
pub fn is_corrupt(err: &io::Error) -> bool {
    classify(err, |e| e.is::<StorageCorrupt>())
}

/// Walks `err`'s payload chain looking for a payload matching `pred`.
fn classify(err: &io::Error, pred: impl Fn(&(dyn std::error::Error + 'static)) -> bool) -> bool {
    let mut source: Option<&(dyn std::error::Error + 'static)> = err.get_ref().map(|e| e as _);
    while let Some(e) = source {
        if pred(e) {
            return true;
        }
        // `io::Error::source()` yields the *source of* its payload, which
        // would skip a nested payload entirely — descend into it by hand.
        source = match e.downcast_ref::<io::Error>() {
            Some(io_err) => io_err.get_ref().map(|inner| inner as _),
            None => e.source(),
        };
    }
    false
}

/// Pages staged by an open transaction (no-steal policy: they must not
/// reach the main file until commit).
struct Txn {
    pages: HashMap<u64, Page>,
    /// `num_pages` when the transaction began, for allocation rollback.
    pages_at_begin: u64,
}

/// A pager over one file: allocates, reads and writes 4 KB pages and counts
/// raw disk operations. Higher layers access it through a [`BufferPool`]
/// (which turns the raw counts into the paper's *PA* metric).
///
/// Every physical page carries a CRC-32 footer over its data area,
/// stamped on write and verified on read; a mismatch surfaces as an
/// `InvalidData` error wrapping [`StorageCorrupt`]. While a transaction
/// is open ([`Pager::txn_begin`]) writes are staged in memory and only
/// reach the file at [`Pager::txn_commit`] — the no-steal policy the
/// redo-only WAL depends on.
///
/// [`BufferPool`]: crate::BufferPool
pub struct Pager {
    file: Mutex<File>,
    path: PathBuf,
    num_pages: AtomicU64,
    disk_reads: AtomicU64,
    disk_writes: AtomicU64,
    fsyncs: AtomicU64,
    txn: Mutex<Option<Txn>>,
}

impl Pager {
    /// Creates (truncating) a pager file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Pager {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            num_pages: AtomicU64::new(0),
            disk_reads: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            txn: Mutex::new(None),
        })
    }

    /// Opens an existing pager file.
    ///
    /// # Errors
    /// Fails if the file does not exist or its size is not a multiple of
    /// [`PAGE_SIZE`].
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file length {len} is not a multiple of the page size"),
            ));
        }
        Ok(Pager {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            num_pages: AtomicU64::new(len / PAGE_SIZE as u64),
            disk_reads: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
            fsyncs: AtomicU64::new(0),
            txn: Mutex::new(None),
        })
    }

    /// The file this pager manages.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Allocates a fresh zeroed page at the end of the file.
    pub fn allocate(&self) -> io::Result<PageId> {
        let id = PageId(self.num_pages.fetch_add(1, Ordering::SeqCst));
        // Materialise the page so the file length stays consistent (staged
        // in memory while a transaction is open).
        self.write_page(id, &Page::new())?;
        Ok(id)
    }

    /// `InvalidData` error wrapping [`BadPageRef`] for a page number at
    /// or beyond the allocated range.
    fn check_allocated(&self, id: PageId) -> io::Result<()> {
        let num_pages = self.num_pages.load(Ordering::SeqCst);
        if id.0 < num_pages {
            return Ok(());
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            BadPageRef {
                file: self.path.clone(),
                page: id.0,
                num_pages,
            },
        ))
    }

    /// Reads a page, consulting the open transaction's staged pages first
    /// and verifying the CRC footer of anything fetched from disk.
    ///
    /// # Errors
    /// `InvalidData` wrapping [`BadPageRef`] for an unallocated page
    /// number, or wrapping [`StorageCorrupt`] on a CRC mismatch.
    pub fn read_page(&self, id: PageId) -> io::Result<Page> {
        self.check_allocated(id)?;
        {
            let txn = self.txn.lock();
            if let Some(t) = txn.as_ref() {
                if let Some(page) = t.pages.get(&id.0) {
                    return Ok(page.clone());
                }
            }
        }
        let mut page = Page::new();
        {
            let mut file = self.file.lock();
            file.seek(SeekFrom::Start(id.byte_offset()))?;
            file.read_exact(page.bytes_mut())?;
        }
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        self.verify_crc(id, &page)?;
        Ok(page)
    }

    fn verify_crc(&self, id: PageId, page: &Page) -> io::Result<()> {
        let stored = page.footer_crc();
        let computed = crc32(page.data_area());
        if stored == computed {
            return Ok(());
        }
        // A fully zeroed page (data and footer) is a page the filesystem
        // materialised but whose content write never happened — recovery
        // rewrites it from the WAL, so reading it is not corruption.
        if stored == 0 && page.bytes().iter().all(|&b| b == 0) {
            return Ok(());
        }
        Err(io::Error::new(
            io::ErrorKind::InvalidData,
            StorageCorrupt {
                file: self.path.clone(),
                page: id.0,
                stored,
                computed,
            },
        ))
    }

    /// Writes a page. While a transaction is open the write is staged in
    /// memory; otherwise it is stamped with its CRC and written through.
    ///
    /// # Errors
    /// `InvalidData` wrapping [`BadPageRef`] for an unallocated page
    /// number.
    pub fn write_page(&self, id: PageId, page: &Page) -> io::Result<()> {
        self.check_allocated(id)?;
        {
            let mut txn = self.txn.lock();
            if let Some(t) = txn.as_mut() {
                t.pages.insert(id.0, page.clone());
                return Ok(());
            }
        }
        self.write_page_raw(id, page)
    }

    /// Stamps the CRC footer and writes the page to disk, honouring the
    /// fault-injection hooks.
    fn write_page_raw(&self, id: PageId, page: &Page) -> io::Result<()> {
        let mut frame = page.clone();
        frame.set_footer_crc(crc32(frame.data_area()));
        let frame = frame.bytes();
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.byte_offset()))?;
        match fault::on_write(&self.path, frame) {
            WritePlan::Proceed => file.write_all(frame)?,
            WritePlan::CrashAfterWriting(bytes) => {
                file.write_all(&bytes)?;
                file.flush()?;
                return Err(fault::injected_crash());
            }
            WritePlan::Crash => return Err(fault::injected_crash()),
        }
        self.disk_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Begins a transaction: until [`Pager::txn_commit`], writes and
    /// allocations stay in memory. One transaction at a time.
    ///
    /// # Errors
    /// Fails if a transaction is already open.
    pub fn txn_begin(&self) -> io::Result<()> {
        let mut txn = self.txn.lock();
        if txn.is_some() {
            return Err(io::Error::other("nested pager transaction"));
        }
        *txn = Some(Txn {
            pages: HashMap::new(),
            pages_at_begin: self.num_pages.load(Ordering::SeqCst),
        });
        Ok(())
    }

    /// Snapshot of the open transaction's staged pages in page order
    /// (the images a WAL commit record must carry).
    ///
    /// # Errors
    /// Fails if no transaction is open.
    pub fn txn_pages(&self) -> io::Result<Vec<(PageId, Page)>> {
        let txn = self.txn.lock();
        let Some(t) = txn.as_ref() else {
            return Err(io::Error::other("no open pager transaction"));
        };
        let mut pages: Vec<(PageId, Page)> = t
            .pages
            .iter()
            .map(|(&no, page)| (PageId(no), page.clone()))
            .collect();
        pages.sort_by_key(|(id, _)| id.0);
        Ok(pages)
    }

    /// Applies the staged pages to the file and closes the transaction.
    /// The caller must have made the transaction durable first (WAL) —
    /// this method does not fsync.
    ///
    /// # Errors
    /// Fails if no transaction is open; the write-back itself can fail
    /// like any physical page write.
    pub fn txn_commit(&self) -> io::Result<()> {
        let staged = {
            let mut txn = self.txn.lock();
            let Some(t) = txn.take() else {
                return Err(io::Error::other("no open pager transaction"));
            };
            let mut pages: Vec<(u64, Page)> = t.pages.into_iter().collect();
            pages.sort_by_key(|&(no, _)| no);
            pages
        };
        for (no, page) in staged {
            self.write_page_raw(PageId(no), &page)?;
        }
        Ok(())
    }

    /// Discards the staged pages and rolls back in-transaction
    /// allocations. Callers must also invalidate any caches above the
    /// pager that may have seen staged pages.
    pub fn txn_abort(&self) {
        let mut txn = self.txn.lock();
        if let Some(t) = txn.take() {
            self.num_pages.store(t.pages_at_begin, Ordering::SeqCst);
        }
    }

    /// Extends the file to at least `pages` pages (zero-filled). Recovery
    /// redo uses this before rewriting pages that lie beyond the end of a
    /// crash-truncated file; all-zero pages read back as valid.
    pub fn grow_to(&self, pages: u64) -> io::Result<()> {
        let cur = self.num_pages.load(Ordering::SeqCst);
        if pages > cur {
            let len = pages.checked_mul(PAGE_SIZE as u64).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidInput,
                    format!("page count {pages} overflows the file length"),
                )
            })?;
            self.file.lock().set_len(len)?;
            self.num_pages.store(pages, Ordering::SeqCst);
        }
        Ok(())
    }

    /// Whether a transaction is open.
    pub fn txn_active(&self) -> bool {
        self.txn.lock().is_some()
    }

    /// Number of allocated pages — the index's storage size in pages
    /// (Table 6 reports `pages · 4 KB`).
    pub fn num_pages(&self) -> u64 {
        self.num_pages.load(Ordering::SeqCst)
    }

    /// Raw disk reads performed so far.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads.load(Ordering::Relaxed)
    }

    /// Raw disk writes performed so far.
    pub fn disk_writes(&self) -> u64 {
        self.disk_writes.load(Ordering::Relaxed)
    }

    /// fsyncs performed so far.
    pub fn fsyncs(&self) -> u64 {
        self.fsyncs.load(Ordering::Relaxed)
    }

    /// Zeroes the fsync counter (the read/write counters are reset by
    /// the buffer pool's own accounting).
    pub fn reset_fsyncs(&self) {
        self.fsyncs.store(0, Ordering::Relaxed);
    }

    /// Flushes the OS file buffer.
    pub fn sync(&self) -> io::Result<()> {
        fault::on_sync(&self.path)?;
        self.file.lock().sync_all()?;
        self.fsyncs.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultMode, FaultPlan};
    use crate::tempdir::TempDir;

    #[test]
    fn allocate_write_read_roundtrip() {
        let dir = TempDir::new("pager-roundtrip");
        let pager = Pager::create(&dir.path().join("p.db")).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_eq!((a, b), (PageId(0), PageId(1)));
        assert_eq!(pager.num_pages(), 2);

        let mut p = Page::new();
        p.write_u64(0, 42);
        pager.write_page(b, &p).unwrap();
        assert_eq!(pager.read_page(b).unwrap().read_u64(0), 42);
        assert_eq!(pager.read_page(a).unwrap().read_u64(0), 0);
        assert!(pager.disk_reads() >= 2);
        assert!(pager.disk_writes() >= 3); // two allocs + one write
    }

    #[test]
    fn reopen_preserves_pages() {
        let dir = TempDir::new("pager-reopen");
        let path = dir.path().join("p.db");
        {
            let pager = Pager::create(&path).unwrap();
            let id = pager.allocate().unwrap();
            let mut p = Page::new();
            p.write_slice(10, b"persisted");
            pager.write_page(id, &p).unwrap();
            pager.sync().unwrap();
            assert_eq!(pager.fsyncs(), 1);
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.num_pages(), 1);
        assert_eq!(
            pager.read_page(PageId(0)).unwrap().read_slice(10, 9),
            b"persisted"
        );
    }

    #[test]
    fn unallocated_page_access_is_a_typed_error() {
        let dir = TempDir::new("pager-unalloc");
        let pager = Pager::create(&dir.path().join("p.db")).unwrap();
        let err = pager.read_page(PageId(0)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(is_bad_page_ref(&err), "expected BadPageRef, got {err}");
        assert!(!is_corrupt(&err));
        let err = pager.write_page(PageId(3), &Page::new()).unwrap_err();
        assert!(is_bad_page_ref(&err));
        assert!(err.to_string().contains("unallocated page 3"));
    }

    #[test]
    fn txn_state_misuse_is_a_typed_error() {
        let dir = TempDir::new("pager-txn-misuse");
        let pager = Pager::create(&dir.path().join("p.db")).unwrap();
        assert!(pager.txn_pages().is_err());
        assert!(pager.txn_commit().is_err());
        pager.txn_begin().unwrap();
        assert!(pager.txn_begin().is_err(), "nested txn must fail");
        pager.txn_abort();
        assert!(!pager.txn_active());
    }

    #[test]
    fn open_rejects_corrupt_length() {
        let dir = TempDir::new("pager-corrupt");
        let path = dir.path().join("p.db");
        std::fs::write(&path, b"not a page").unwrap();
        assert!(Pager::open(&path).is_err());
    }

    #[test]
    fn bit_flip_is_detected_as_corrupt() {
        let dir = TempDir::new("pager-bitflip");
        let path = dir.path().join("p.db");
        let pager = Pager::create(&path).unwrap();
        let id = pager.allocate().unwrap();
        let mut p = Page::new();
        p.write_slice(0, b"important data");
        pager.write_page(id, &p).unwrap();
        drop(pager);

        // Flip one bit in the data area behind the pager's back.
        let mut raw = std::fs::read(&path).unwrap();
        raw[100] ^= 0x04;
        std::fs::write(&path, &raw).unwrap();

        let pager = Pager::open(&path).unwrap();
        let err = pager.read_page(id).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(is_corrupt(&err), "expected corruption error, got {err}");

        // A damaged footer is equally fatal.
        let mut raw = std::fs::read(&path).unwrap();
        raw[100] ^= 0x04; // restore data
        raw[PAGE_SIZE - 1] ^= 0x80; // break footer
        std::fs::write(&path, &raw).unwrap();
        let pager = Pager::open(&path).unwrap();
        assert!(is_corrupt(&pager.read_page(id).unwrap_err()));
    }

    #[test]
    fn all_zero_pages_read_as_valid() {
        let dir = TempDir::new("pager-zero");
        let path = dir.path().join("p.db");
        {
            let pager = Pager::create(&path).unwrap();
            pager.allocate().unwrap();
        }
        // Simulate a filesystem that extended the file but lost the
        // content write: the page is all zeroes, footer included.
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.read_page(PageId(0)).unwrap().read_u64(0), 0);
    }

    #[test]
    fn txn_stages_writes_until_commit() {
        let dir = TempDir::new("pager-txn");
        let path = dir.path().join("p.db");
        let pager = Pager::create(&path).unwrap();
        let id = pager.allocate().unwrap();
        pager.sync().unwrap();
        let len_before = std::fs::metadata(&path).unwrap().len();

        pager.txn_begin().unwrap();
        let mut p = Page::new();
        p.write_u64(0, 7);
        pager.write_page(id, &p).unwrap();
        let id2 = pager.allocate().unwrap();
        // Staged pages are visible to reads...
        assert_eq!(pager.read_page(id).unwrap().read_u64(0), 7);
        // ...but nothing reached the file, not even the allocation.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), len_before);
        assert_eq!(pager.txn_pages().unwrap().len(), 2);

        pager.txn_commit().unwrap();
        assert!(!pager.txn_active());
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            2 * PAGE_SIZE as u64
        );
        assert_eq!(pager.read_page(id).unwrap().read_u64(0), 7);
        assert_eq!(pager.read_page(id2).unwrap().read_u64(0), 0);
    }

    #[test]
    fn txn_abort_rolls_back_writes_and_allocations() {
        let dir = TempDir::new("pager-abort");
        let pager = Pager::create(&dir.path().join("p.db")).unwrap();
        let id = pager.allocate().unwrap();
        let mut p = Page::new();
        p.write_u64(0, 1);
        pager.write_page(id, &p).unwrap();

        pager.txn_begin().unwrap();
        let mut p2 = Page::new();
        p2.write_u64(0, 2);
        pager.write_page(id, &p2).unwrap();
        pager.allocate().unwrap();
        pager.txn_abort();

        assert_eq!(pager.num_pages(), 1);
        assert_eq!(pager.read_page(id).unwrap().read_u64(0), 1);
    }

    #[test]
    fn injected_partial_write_is_caught_by_crc() {
        let _serial = crate::fault::test_lock();
        let dir = TempDir::new("pager-fault");
        let path = dir.path().join("p.db");
        let pager = Pager::create(&path).unwrap();
        let id = pager.allocate().unwrap();
        let mut p = Page::new();
        p.write_slice(0, &[0xaa; 1000]);
        pager.write_page(id, &p).unwrap();

        let guard = FaultPlan {
            scope: dir.path().to_path_buf(),
            fail_after: 0,
            mode: FaultMode::Partial,
            seed: 3,
        }
        .install();
        let mut p2 = Page::new();
        p2.write_slice(0, &[0xbb; 1000]);
        let err = pager.write_page(id, &p2).unwrap_err();
        assert!(crate::fault::is_injected_crash(&err));
        drop(guard);

        // The torn page fails CRC on the next read (or still carries the
        // old image if the tear kept 0 bytes).
        let reopened = Pager::open(&path).unwrap();
        match reopened.read_page(id) {
            Ok(page) => assert_eq!(page.read_slice(0, 1000), &[0xaa; 1000][..]),
            Err(err) => assert!(is_corrupt(&err)),
        }
    }
}
