//! Library half of `spb-cli`: argument parsing, data-file loading and the
//! command implementations, separated from `main` so everything is unit-
//! and integration-testable without spawning processes.
//!
//! Supported data schemas:
//!
//! * `words` — one UTF-8 word per line, edit distance;
//! * `vectors` — one comma-separated `f32` row per line (coordinates in
//!   `[0, 1]`), L₂ or L₅ norm.
//!
//! The schema is recorded in the index directory (`cli.schema`) at build
//! time so query commands need only `--index`.

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::io::{self, BufRead};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};

use spb_core::{SpbConfig, SpbTree};
use spb_metric::{EditDistance, FloatVec, LpNorm, Word};
use spb_server::{AdmissionConfig, Client, ClientError, ErrorCode, Response, ServerConfig};

pub use spb_server::{schema_path, Schema};

/// Exit code for argument/usage errors.
pub const EXIT_USAGE: i32 = 2;
/// Exit code when the remote server cannot be reached.
pub const EXIT_CONNECT: i32 = 10;
/// Exit code when the server shed the request (admission queue full).
pub const EXIT_OVERLOADED: i32 = 11;
/// Exit code when the request's deadline expired before completion.
pub const EXIT_DEADLINE: i32 = 12;
/// Exit code for a wire-protocol version mismatch.
pub const EXIT_VERSION: i32 = 13;

/// A command failure: the process exit code plus a one-line diagnostic.
#[derive(Debug)]
pub struct CliError {
    /// Process exit code (never 0).
    pub code: i32,
    /// One-line message for stderr.
    pub message: String,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { code: 1, message }
    }
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Maps a remote failure onto the CLI's distinct exit codes so shell
/// scripts can tell "back off" (overloaded) from "give up" (refused).
fn client_error(e: ClientError) -> CliError {
    let code = match &e {
        ClientError::Connect(_) => EXIT_CONNECT,
        ClientError::Server {
            code: ErrorCode::Overloaded,
            ..
        } => EXIT_OVERLOADED,
        ClientError::Server {
            code: ErrorCode::DeadlineExceeded,
            ..
        } => EXIT_DEADLINE,
        ClientError::Server {
            code: ErrorCode::VersionMismatch,
            ..
        } => EXIT_VERSION,
        ClientError::Wire(spb_server::WireError::VersionMismatch { .. }) => EXIT_VERSION,
        _ => 1,
    };
    CliError {
        code,
        message: e.to_string(),
    }
}

/// Parses the `--accel` flag: `off` / `learned`.
pub fn parse_accel(s: &str) -> Result<spb_core::AccelPolicy, String> {
    match s {
        "off" => Ok(spb_core::AccelPolicy::Off),
        "learned" => Ok(spb_core::AccelPolicy::Learned),
        other => Err(format!(
            "unknown accel policy {other:?} (expected off|learned)"
        )),
    }
}

/// Parses the `--curve` flag: `hilbert` / `z`.
pub fn parse_curve(s: &str) -> Result<spb_sfc::CurveKind, String> {
    match s {
        "hilbert" => Ok(spb_sfc::CurveKind::Hilbert),
        "z" => Ok(spb_sfc::CurveKind::Z),
        other => Err(format!("unknown curve {other:?} (expected hilbert|z)")),
    }
}

/// A parsed command line.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// Build an index from a data file.
    Build {
        /// Data file path.
        input: PathBuf,
        /// Index directory to create.
        index: PathBuf,
        /// `words` or `vectors:l2` / `vectors:l5`.
        schema_flag: String,
        /// Number of pivots.
        pivots: usize,
        /// `hilbert` or `z`.
        curve: String,
        /// `off` or `learned` (`--accel`): train and persist a learned
        /// leaf-positioning model alongside the index.
        accel: String,
    },
    /// Range query.
    Range {
        /// Index directory.
        index: PathBuf,
        /// Query object in the schema's line format.
        query: String,
        /// Search radius.
        radius: f64,
    },
    /// Count-only range query.
    Count {
        /// Index directory.
        index: PathBuf,
        /// Query object in the schema's line format.
        query: String,
        /// Search radius.
        radius: f64,
    },
    /// kNN query.
    Knn {
        /// Index directory.
        index: PathBuf,
        /// Query object in the schema's line format.
        query: String,
        /// Number of neighbours.
        k: usize,
        /// Approximation factor (1 = exact).
        alpha: f64,
        /// Measure and report the achieved recall against the exact
        /// answer (`--approx`).
        approx: bool,
        /// Auto-tune `alpha` to the smallest ladder value meeting this
        /// recall target (`--recall-target`); implies measurement.
        recall_target: Option<f64>,
    },
    /// Batch of queries from a file, fanned across worker threads.
    Batch {
        /// Index directory.
        index: PathBuf,
        /// File with one query per line (schema line format).
        queries: PathBuf,
        /// Range radius (`--radius`); mutually exclusive with `k`.
        radius: Option<f64>,
        /// Neighbour count (`--k`); mutually exclusive with `radius`.
        k: Option<usize>,
        /// Worker threads (also the number of cache stripes).
        threads: usize,
    },
    /// Print index statistics.
    Stats {
        /// Index directory.
        index: PathBuf,
    },
    /// Offline integrity check: page checksums, B⁺-tree structure, RAF
    /// reachability, WAL state. Needs no metric or schema.
    Verify {
        /// Index directory.
        index: PathBuf,
    },
    /// Replay the write-ahead log after a crash (also runs automatically
    /// when an index is opened).
    Recover {
        /// Index directory.
        index: PathBuf,
    },
    /// Serve an index over TCP until SIGINT/SIGTERM or a remote
    /// `shutdown` request.
    Serve {
        /// Index directory.
        index: PathBuf,
        /// Listen address, e.g. `127.0.0.1:7878`.
        addr: String,
        /// Requests executing concurrently before arrivals queue.
        max_inflight: usize,
        /// Requests allowed to wait before arrivals are shed.
        max_queue: usize,
        /// Concurrent TCP connections before new ones are refused.
        max_connections: usize,
        /// Worker threads for batch queries (also cache stripes).
        threads: usize,
        /// Keep a bounded in-memory ring of span trace events
        /// (`--trace on`); dumped through `remote obs-stats`.
        trace: bool,
    },
    /// Launch an in-process sharded cluster over a data file, check it
    /// answers byte-identically to a single node, and (with replicas)
    /// that reads survive a primary kill. Prints greppable
    /// `cluster-identical: OK` / `failover: OK` lines for CI.
    Cluster {
        /// Data file path (words schema: one word per line).
        input: PathBuf,
        /// Number of shards.
        shards: usize,
        /// Read replicas per shard.
        replicas: usize,
        /// Working directory for the cluster's files; a throwaway temp
        /// directory when absent.
        dir: Option<PathBuf>,
    },
    /// A query or update against a running `spb-server`.
    Remote(RemoteCommand),
}

/// The `spb-cli remote <sub>` family. Queries are written in the same
/// text form as the local commands; the schema needed to encode them is
/// fetched from the server's `ping` handshake.
#[derive(Clone, Debug, PartialEq)]
pub enum RemoteCommand {
    /// Protocol handshake: version, schema, object count.
    Ping {
        /// Server address.
        addr: String,
    },
    /// Range query.
    Range {
        /// Server address.
        addr: String,
        /// Query in the schema's text form.
        query: String,
        /// Search radius.
        radius: f64,
        /// Relative deadline in ms (`0` = none).
        deadline_ms: u32,
    },
    /// kNN query.
    Knn {
        /// Server address.
        addr: String,
        /// Query in the schema's text form.
        query: String,
        /// Number of neighbours.
        k: u32,
        /// Use the α-approximate wire op (`--approx`).
        approx: bool,
        /// Approximation factor for `--approx` (default 1.0).
        alpha: f64,
        /// Relative deadline in ms (`0` = none).
        deadline_ms: u32,
    },
    /// Insert one object.
    Insert {
        /// Server address.
        addr: String,
        /// Object in the schema's text form.
        object: String,
        /// Relative deadline in ms (`0` = none).
        deadline_ms: u32,
    },
    /// Delete one object.
    Delete {
        /// Server address.
        addr: String,
        /// Object in the schema's text form.
        object: String,
        /// Relative deadline in ms (`0` = none).
        deadline_ms: u32,
    },
    /// Batch of queries from a file (one per line).
    Batch {
        /// Server address.
        addr: String,
        /// File with one query per line.
        queries: PathBuf,
        /// Range radius (`--radius`); mutually exclusive with `k`.
        radius: Option<f64>,
        /// Neighbour count (`--k`); mutually exclusive with `radius`.
        k: Option<u32>,
        /// Relative deadline in ms (`0` = none).
        deadline_ms: u32,
    },
    /// Server + index statistics.
    Stats {
        /// Server address.
        addr: String,
    },
    /// Full observability snapshot: every counter, gauge and latency
    /// histogram the server has registered, plus recent trace events.
    ObsStats {
        /// Server address.
        addr: String,
    },
    /// Ask the server to drain in-flight work, checkpoint and exit.
    Shutdown {
        /// Server address.
        addr: String,
    },
}

/// Parses an argument vector (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or_else(usage)?;
    let mut flags: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut rest: Vec<&String> = it.collect();
    // `remote` takes a positional subcommand before its flags.
    let sub: Option<String> = if cmd == "remote" {
        let first = rest
            .first()
            .filter(|s| !s.starts_with("--"))
            .ok_or_else(|| format!("remote needs a subcommand\n{}", usage()))?;
        let s = (*first).clone();
        rest.remove(0);
        Some(s)
    } else {
        None
    };
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, got {:?}", rest[i]))?;
        // `--approx` is a bare switch: it takes no value.
        if key == "approx" {
            flags.insert(key.to_owned(), "true".to_owned());
            i += 1;
            continue;
        }
        let value = rest
            .get(i + 1)
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_owned(), (*value).clone());
        i += 2;
    }
    let need = |k: &str| -> Result<String, String> {
        flags
            .get(k)
            .cloned()
            .ok_or_else(|| format!("missing required --{k}"))
    };
    let opt = |k: &str, default: &str| flags.get(k).cloned().unwrap_or_else(|| default.to_owned());

    match cmd.as_str() {
        "build" => Ok(Command::Build {
            input: PathBuf::from(need("input")?),
            index: PathBuf::from(need("index")?),
            schema_flag: opt("schema", "words"),
            pivots: opt("pivots", "5")
                .parse()
                .map_err(|_| "--pivots must be an integer".to_owned())?,
            curve: opt("curve", "hilbert"),
            accel: opt("accel", "off"),
        }),
        "range" | "count" => {
            let index = PathBuf::from(need("index")?);
            let query = need("query")?;
            let radius: f64 = need("radius")?
                .parse()
                .map_err(|_| "--radius must be a number".to_owned())?;
            Ok(if cmd == "range" {
                Command::Range {
                    index,
                    query,
                    radius,
                }
            } else {
                Command::Count {
                    index,
                    query,
                    radius,
                }
            })
        }
        "knn" => Ok(Command::Knn {
            index: PathBuf::from(need("index")?),
            query: need("query")?,
            k: opt("k", "10")
                .parse()
                .map_err(|_| "--k must be an integer".to_owned())?,
            alpha: opt("alpha", "1.0")
                .parse()
                .map_err(|_| "--alpha must be a number".to_owned())?,
            approx: flags.contains_key("approx"),
            recall_target: flags
                .get("recall-target")
                .map(|t| t.parse::<f64>())
                .transpose()
                .map_err(|_| "--recall-target must be a number".to_owned())?,
        }),
        "batch" => {
            let radius = flags
                .get("radius")
                .map(|r| r.parse::<f64>())
                .transpose()
                .map_err(|_| "--radius must be a number".to_owned())?;
            let k = flags
                .get("k")
                .map(|k| k.parse::<usize>())
                .transpose()
                .map_err(|_| "--k must be an integer".to_owned())?;
            if radius.is_some() == k.is_some() {
                return Err("batch needs exactly one of --radius or --k".to_owned());
            }
            Ok(Command::Batch {
                index: PathBuf::from(need("index")?),
                queries: PathBuf::from(need("queries")?),
                radius,
                k,
                threads: opt("threads", "1")
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_owned())?,
            })
        }
        "stats" => {
            // `stats --addr HOST:PORT` is shorthand for `remote
            // obs-stats`: the live server's full metric snapshot.
            if let Some(addr) = flags.get("addr") {
                Ok(Command::Remote(RemoteCommand::ObsStats {
                    addr: addr.clone(),
                }))
            } else {
                Ok(Command::Stats {
                    index: PathBuf::from(need("index")?),
                })
            }
        }
        "verify" => Ok(Command::Verify {
            index: PathBuf::from(need("index")?),
        }),
        "recover" => Ok(Command::Recover {
            index: PathBuf::from(need("index")?),
        }),
        "serve" => Ok(Command::Serve {
            index: PathBuf::from(need("index")?),
            addr: opt("addr", "127.0.0.1:7878"),
            max_inflight: opt("max-inflight", "4")
                .parse()
                .map_err(|_| "--max-inflight must be an integer".to_owned())?,
            max_queue: opt("max-queue", "64")
                .parse()
                .map_err(|_| "--max-queue must be an integer".to_owned())?,
            max_connections: opt("max-connections", "64")
                .parse()
                .map_err(|_| "--max-connections must be an integer".to_owned())?,
            threads: opt("threads", "4")
                .parse()
                .map_err(|_| "--threads must be an integer".to_owned())?,
            trace: match opt("trace", "off").as_str() {
                "on" | "true" | "1" => true,
                "off" | "false" | "0" => false,
                other => return Err(format!("--trace must be on|off, got {other:?}")),
            },
        }),
        "cluster" => Ok(Command::Cluster {
            input: PathBuf::from(need("input")?),
            shards: opt("shards", "2")
                .parse()
                .map_err(|_| "--shards must be an integer".to_owned())?,
            replicas: opt("replicas", "0")
                .parse()
                .map_err(|_| "--replicas must be an integer".to_owned())?,
            dir: flags.get("dir").map(PathBuf::from),
        }),
        "remote" => {
            let addr = need("addr")?;
            let deadline_ms: u32 = opt("deadline-ms", "0")
                .parse()
                .map_err(|_| "--deadline-ms must be an integer".to_owned())?;
            let sub = sub.expect("remote always parses a subcommand");
            match sub.as_str() {
                "ping" => Ok(Command::Remote(RemoteCommand::Ping { addr })),
                "range" => Ok(Command::Remote(RemoteCommand::Range {
                    addr,
                    query: need("query")?,
                    radius: need("radius")?
                        .parse()
                        .map_err(|_| "--radius must be a number".to_owned())?,
                    deadline_ms,
                })),
                "knn" => Ok(Command::Remote(RemoteCommand::Knn {
                    addr,
                    query: need("query")?,
                    k: opt("k", "10")
                        .parse()
                        .map_err(|_| "--k must be an integer".to_owned())?,
                    approx: flags.contains_key("approx"),
                    alpha: opt("alpha", "1.0")
                        .parse()
                        .map_err(|_| "--alpha must be a number".to_owned())?,
                    deadline_ms,
                })),
                "insert" => Ok(Command::Remote(RemoteCommand::Insert {
                    addr,
                    object: need("object")?,
                    deadline_ms,
                })),
                "delete" => Ok(Command::Remote(RemoteCommand::Delete {
                    addr,
                    object: need("object")?,
                    deadline_ms,
                })),
                "batch" => {
                    let radius = flags
                        .get("radius")
                        .map(|r| r.parse::<f64>())
                        .transpose()
                        .map_err(|_| "--radius must be a number".to_owned())?;
                    let k = flags
                        .get("k")
                        .map(|k| k.parse::<u32>())
                        .transpose()
                        .map_err(|_| "--k must be an integer".to_owned())?;
                    if radius.is_some() == k.is_some() {
                        return Err("remote batch needs exactly one of --radius or --k".to_owned());
                    }
                    Ok(Command::Remote(RemoteCommand::Batch {
                        addr,
                        queries: PathBuf::from(need("queries")?),
                        radius,
                        k,
                        deadline_ms,
                    }))
                }
                "stats" => Ok(Command::Remote(RemoteCommand::Stats { addr })),
                "obs-stats" => Ok(Command::Remote(RemoteCommand::ObsStats { addr })),
                "shutdown" => Ok(Command::Remote(RemoteCommand::Shutdown { addr })),
                other => Err(format!("unknown remote subcommand {other:?}\n{}", usage())),
            }
        }
        other => Err(format!("unknown command {other:?}\n{}", usage())),
    }
}

/// The usage banner.
pub fn usage() -> String {
    "usage: spb-cli <command> [--flag value ...]\n\
     \x20 build --input FILE --index DIR [--schema words|vectors:l2|vectors:l5] [--pivots N] [--curve hilbert|z] [--accel off|learned]\n\
     \x20 range --index DIR --query Q --radius R\n\
     \x20 count --index DIR --query Q --radius R\n\
     \x20 knn   --index DIR --query Q [--k K] [--alpha A] [--approx] [--recall-target T]\n\
     \x20 batch --index DIR --queries FILE (--radius R | --k K) [--threads N]\n\
     \x20 stats --index DIR | --addr HOST:PORT\n\
     \x20 verify --index DIR\n\
     \x20 recover --index DIR\n\
     \x20 serve --index DIR [--addr HOST:PORT] [--max-inflight N] [--max-queue N] [--max-connections N] [--threads N] [--trace on|off]\n\
     \x20 cluster --input FILE [--shards N] [--replicas R] [--dir DIR]\n\
     \x20 remote ping --addr HOST:PORT\n\
     \x20 remote range --addr HOST:PORT --query Q --radius R [--deadline-ms MS]\n\
     \x20 remote knn --addr HOST:PORT --query Q [--k K] [--approx] [--alpha A] [--deadline-ms MS]\n\
     \x20 remote insert --addr HOST:PORT --object O [--deadline-ms MS]\n\
     \x20 remote delete --addr HOST:PORT --object O [--deadline-ms MS]\n\
     \x20 remote batch --addr HOST:PORT --queries FILE (--radius R | --k K) [--deadline-ms MS]\n\
     \x20 remote stats --addr HOST:PORT\n\
     \x20 remote obs-stats --addr HOST:PORT\n\
     \x20 remote shutdown --addr HOST:PORT"
        .to_owned()
}

/// Loads a words file (one word per line, blank lines skipped).
pub fn load_words(reader: impl BufRead) -> io::Result<Vec<Word>> {
    let mut out = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let w = line.trim();
        if !w.is_empty() {
            out.push(Word::new(w));
        }
    }
    Ok(out)
}

/// Loads a vectors file (one comma-separated f32 row per line).
pub fn load_vectors(reader: impl BufRead) -> io::Result<(Vec<FloatVec>, usize)> {
    let mut out: Vec<FloatVec> = Vec::new();
    let mut dim = 0usize;
    for (no, line) in reader.lines().enumerate() {
        let line = line?;
        let row = line.trim();
        if row.is_empty() {
            continue;
        }
        let coords: Result<Vec<f32>, _> = row.split(',').map(|c| c.trim().parse()).collect();
        let coords = coords.map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: bad float: {e}", no + 1),
            )
        })?;
        if dim == 0 {
            dim = coords.len();
        } else if coords.len() != dim {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "line {}: expected {dim} coordinates, got {}",
                    no + 1,
                    coords.len()
                ),
            ));
        }
        out.push(FloatVec::new(coords));
    }
    Ok((out, dim))
}

/// Executes a parsed command, writing human-readable output into `out`.
///
/// Failures carry the process exit code: remote commands map
/// connection-refused, `Overloaded`, `DeadlineExceeded` and protocol
/// version mismatches onto [`EXIT_CONNECT`], [`EXIT_OVERLOADED`],
/// [`EXIT_DEADLINE`] and [`EXIT_VERSION`]; everything else is 1.
pub fn run(cmd: &Command, out: &mut String) -> Result<(), CliError> {
    match cmd {
        Command::Serve {
            index,
            addr,
            max_inflight,
            max_queue,
            max_connections,
            threads,
            trace,
        } => {
            spb_obs::trace::set_enabled(*trace);
            let cfg = ServerConfig {
                max_connections: *max_connections,
                admission: AdmissionConfig {
                    max_inflight: *max_inflight,
                    max_queue: *max_queue,
                },
                worker_threads: *threads,
                ..ServerConfig::default()
            };
            serve_blocking(index, addr, cfg, |a| {
                eprintln!("spb-server listening on {a}");
            })?;
            let _ = writeln!(out, "server stopped");
            Ok(())
        }
        Command::Remote(rc) => run_remote(rc, out),
        other => run_local(other, out).map_err(CliError::from),
    }
}

/// Opens `index` and serves it on `addr`, blocking until SIGINT/SIGTERM
/// or a remote shutdown request. `on_start` observes the bound address
/// (useful with `--addr 127.0.0.1:0`).
pub fn serve_blocking(
    index: &Path,
    addr: &str,
    cfg: ServerConfig,
    on_start: impl FnMut(SocketAddr),
) -> Result<(), CliError> {
    let service = spb_server::open_index(index, 32, cfg.worker_threads.max(1))
        .map_err(|e| CliError::from(format!("open {index:?}: {e}")))?;
    spb_server::serve_until_shutdown(service, addr, cfg, on_start)
        .map_err(|e| CliError::from(format!("serve on {addr}: {e}")))
}

/// Connects and fetches the index schema from the `ping` handshake, so
/// query text can be encoded without any local index directory.
fn connect_with_schema(addr: &str) -> Result<(Client, Schema), CliError> {
    let mut client = Client::connect(addr).map_err(client_error)?;
    let (_version, line, _len) = client.ping().map_err(client_error)?;
    let schema = Schema::from_line(line.trim())?;
    Ok((client, schema))
}

fn run_remote(cmd: &RemoteCommand, out: &mut String) -> Result<(), CliError> {
    match cmd {
        RemoteCommand::Ping { addr } => {
            let mut client = Client::connect(addr.as_str()).map_err(client_error)?;
            let (version, schema, len) = client.ping().map_err(client_error)?;
            let _ = writeln!(out, "protocol v{version}; schema: {schema}; objects: {len}");
            Ok(())
        }
        RemoteCommand::Range {
            addr,
            query,
            radius,
            deadline_ms,
        } => {
            let (mut client, schema) = connect_with_schema(addr)?;
            let obj = schema.encode_text(query)?;
            let (hits, stats) = client
                .range(&obj, *radius, *deadline_ms)
                .map_err(client_error)?;
            for (id, bytes) in &hits {
                let _ = writeln!(out, "{id}\t{}", schema.render(bytes)?);
            }
            let qs: spb_core::QueryStats = (&stats).into();
            report_query(out, hits.len(), &qs);
            Ok(())
        }
        RemoteCommand::Knn {
            addr,
            query,
            k,
            approx,
            alpha,
            deadline_ms,
        } => {
            let (mut client, schema) = connect_with_schema(addr)?;
            let obj = schema.encode_text(query)?;
            let (nn, stats) = if *approx {
                client
                    .knn_approx(&obj, *k, *alpha, *deadline_ms)
                    .map_err(client_error)?
            } else {
                client.knn(&obj, *k, *deadline_ms).map_err(client_error)?
            };
            for (id, d, bytes) in &nn {
                let _ = writeln!(out, "{id}\t{d}\t{}", schema.render(bytes)?);
            }
            let qs: spb_core::QueryStats = (&stats).into();
            report_query(out, nn.len(), &qs);
            Ok(())
        }
        RemoteCommand::Insert {
            addr,
            object,
            deadline_ms,
        } => {
            let (mut client, schema) = connect_with_schema(addr)?;
            let obj = schema.encode_text(object)?;
            let stats = client.insert(&obj, *deadline_ms).map_err(client_error)?;
            let _ = writeln!(
                out,
                "inserted; {} compdists, {} page accesses, {} fsync(s)",
                stats.compdists, stats.page_accesses, stats.fsyncs
            );
            Ok(())
        }
        RemoteCommand::Delete {
            addr,
            object,
            deadline_ms,
        } => {
            let (mut client, schema) = connect_with_schema(addr)?;
            let obj = schema.encode_text(object)?;
            let (found, stats) = client.delete(&obj, *deadline_ms).map_err(client_error)?;
            let _ = writeln!(
                out,
                "{}; {} compdists, {} page accesses, {} fsync(s)",
                if found { "deleted" } else { "not found" },
                stats.compdists,
                stats.page_accesses,
                stats.fsyncs
            );
            Ok(())
        }
        RemoteCommand::Batch {
            addr,
            queries,
            radius,
            k,
            deadline_ms,
        } => {
            let text = std::fs::read_to_string(queries)
                .map_err(|e| CliError::from(format!("open {queries:?}: {e}")))?;
            let (mut client, schema) = connect_with_schema(addr)?;
            let objs = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .map(|l| schema.encode_text(l))
                .collect::<Result<Vec<Vec<u8>>, String>>()?;
            let n = objs.len();
            let start = std::time::Instant::now();
            let per_query: Vec<(usize, spb_server::WireStats)> = if let Some(r) = radius {
                client
                    .batch_range(objs, *r, *deadline_ms)
                    .map_err(client_error)?
                    .into_iter()
                    .map(|(hits, stats)| (hits.len(), stats))
                    .collect()
            } else {
                let k = k.expect("parser guarantees one of radius/k");
                client
                    .batch_knn(objs, k, *deadline_ms)
                    .map_err(client_error)?
                    .into_iter()
                    .map(|(nn, stats)| (nn.len(), stats))
                    .collect()
            };
            let elapsed = start.elapsed().as_secs_f64();
            for (i, (results, stats)) in per_query.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "query {i}: {results} result(s); {} compdists, {} page accesses",
                    stats.compdists, stats.page_accesses
                );
            }
            let qps = if elapsed > 0.0 {
                n as f64 / elapsed
            } else {
                f64::INFINITY
            };
            let _ = writeln!(
                out,
                "# {n} queries over the wire: {elapsed:.3}s total, {qps:.1} queries/s"
            );
            Ok(())
        }
        RemoteCommand::Stats { addr } => {
            let mut client = Client::connect(addr.as_str()).map_err(client_error)?;
            match client.stats().map_err(client_error)? {
                Response::Stats {
                    schema,
                    len,
                    storage_bytes,
                    num_pivots,
                    served,
                    shed,
                    deadline_miss,
                } => {
                    let _ = writeln!(out, "schema: {schema}");
                    let _ = writeln!(out, "objects: {len}");
                    let _ = writeln!(out, "storage: {:.1} KB", storage_bytes as f64 / 1024.0);
                    let _ = writeln!(out, "pivots:  {num_pivots}");
                    let _ = writeln!(out, "served:  {served}");
                    let _ = writeln!(out, "shed:    {shed}");
                    let _ = writeln!(out, "deadline misses: {deadline_miss}");
                    // Event-loop health, pulled from the obs snapshot:
                    // live connections, poll wakeups, and how well the
                    // dispatcher is coalescing work into batches.
                    if let Ok(snap) = client.obs_stats() {
                        if let Some(v) = snap.gauge("open_connections") {
                            let _ = writeln!(out, "open connections: {v}");
                        }
                        if let Some(v) = snap.counter("readiness_wakeups") {
                            let _ = writeln!(out, "readiness wakeups: {v}");
                        }
                        if let Some(h) = snap.hist("dispatch_batch_size") {
                            let _ = writeln!(
                                out,
                                "dispatch batch size: p50 {} p90 {} max {} ({} batches)",
                                h.p50, h.p90, h.max, h.count
                            );
                        }
                        // Learned-positioning health: how often queries
                        // ride the model vs fall back to classic
                        // descent, and the last measured recall.
                        let hit = snap.counter("accel.model_hit").unwrap_or(0);
                        let fallback = snap.counter("accel.model_fallback").unwrap_or(0);
                        if hit + fallback > 0 {
                            let _ = writeln!(out, "accel model hits: {hit}");
                            let _ = writeln!(out, "accel model fallbacks: {fallback}");
                        }
                        if let Some(v) = snap.counter("accel.model_retrain") {
                            let _ = writeln!(out, "accel model retrains: {v}");
                        }
                        if let Some(v) = snap.gauge("accel.recall_permille") {
                            let _ = writeln!(out, "accel recall: {:.3}", v as f64 / 1000.0);
                        }
                    }
                    Ok(())
                }
                other => Err(CliError::from(format!("unexpected response {other:?}"))),
            }
        }
        RemoteCommand::ObsStats { addr } => {
            let mut client = Client::connect(addr.as_str()).map_err(client_error)?;
            let snapshot = client.obs_stats().map_err(client_error)?;
            render_obs_snapshot(out, &snapshot);
            Ok(())
        }
        RemoteCommand::Shutdown { addr } => {
            let mut client = Client::connect(addr.as_str()).map_err(client_error)?;
            client.shutdown().map_err(client_error)?;
            let _ = writeln!(out, "shutdown requested");
            Ok(())
        }
    }
}

/// Formats a nanosecond reading with a human unit (`1.2ms`, `340us`).
fn fmt_nanos(n: u64) -> String {
    if n >= 1_000_000_000 {
        format!("{:.2}s", n as f64 / 1e9)
    } else if n >= 1_000_000 {
        format!("{:.2}ms", n as f64 / 1e6)
    } else if n >= 1_000 {
        format!("{:.1}us", n as f64 / 1e3)
    } else {
        format!("{n}ns")
    }
}

/// Renders the server's observability snapshot as aligned tables:
/// counters, gauges, then histograms (per-phase latency histograms show
/// human-readable durations; others, e.g. `wal.commit_bytes`, raw
/// values), then any buffered trace events.
fn render_obs_snapshot(out: &mut String, snap: &spb_obs::Snapshot) {
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters:");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {name:<32} {v}");
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges:");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {name:<32} {v}");
        }
    }
    if !snap.hists.is_empty() {
        let _ = writeln!(out, "histograms:");
        let _ = writeln!(
            out,
            "  {:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
            "name", "count", "p50", "p90", "p99", "max"
        );
        for (name, h) in &snap.hists {
            // Phase histograms record nanoseconds; everything else
            // (sizes, counts) prints raw.
            let fmt: fn(u64) -> String = if name.starts_with("phase.") {
                fmt_nanos
            } else {
                |v| v.to_string()
            };
            let _ = writeln!(
                out,
                "  {:<24} {:>8} {:>10} {:>10} {:>10} {:>10}",
                name,
                h.count,
                fmt(h.p50),
                fmt(h.p90),
                fmt(h.p99),
                fmt(h.max)
            );
        }
    }
    if !snap.traces.is_empty() {
        let _ = writeln!(out, "traces ({} event(s)):", snap.traces.len());
        for ev in &snap.traces {
            let _ = writeln!(
                out,
                "  +{:<12} {:<24} {}",
                fmt_nanos(ev.at_nanos),
                ev.name,
                fmt_nanos(ev.dur_nanos)
            );
        }
    }
}

fn run_local(cmd: &Command, out: &mut String) -> Result<(), String> {
    match cmd {
        Command::Build {
            input,
            index,
            schema_flag,
            pivots,
            curve,
            accel,
        } => {
            let curve = parse_curve(curve)?;
            let accel = parse_accel(accel)?;
            let cfg = SpbConfig {
                num_pivots: *pivots,
                curve,
                accel,
                ..SpbConfig::default()
            };
            let file = std::fs::File::open(input).map_err(|e| format!("open {input:?}: {e}"))?;
            let reader = io::BufReader::new(file);
            match schema_flag.as_str() {
                "words" => {
                    let words = load_words(reader).map_err(|e| e.to_string())?;
                    if words.is_empty() {
                        return Err("input file holds no words".to_owned());
                    }
                    let max_len = words.iter().map(Word::len).max().unwrap_or(1);
                    let metric = EditDistance::new(max_len);
                    let tree =
                        SpbTree::build(index, &words, metric, &cfg).map_err(|e| e.to_string())?;
                    std::fs::write(schema_path(index), Schema::Words { max_len }.to_line())
                        .map_err(|e| e.to_string())?;
                    report_build(out, tree.build_stats(), tree.storage_bytes());
                }
                "vectors:l2" | "vectors:l5" => {
                    let (vecs, dim) = load_vectors(reader).map_err(|e| e.to_string())?;
                    if vecs.is_empty() {
                        return Err("input file holds no vectors".to_owned());
                    }
                    let p: u32 = if schema_flag.ends_with("l2") { 2 } else { 5 };
                    let metric = LpNorm::new(p as f64, dim, 1.0);
                    let tree =
                        SpbTree::build(index, &vecs, metric, &cfg).map_err(|e| e.to_string())?;
                    std::fs::write(schema_path(index), Schema::Vectors { p, dim }.to_line())
                        .map_err(|e| e.to_string())?;
                    report_build(out, tree.build_stats(), tree.storage_bytes());
                }
                other => {
                    return Err(format!(
                        "unknown schema {other:?} (expected words|vectors:l2|vectors:l5)"
                    ))
                }
            }
            Ok(())
        }
        Command::Range {
            index,
            query,
            radius,
        } => with_index(index, |idx| match idx {
            Index::Words(tree) => {
                let (hits, stats) = tree
                    .range(&Word::new(query.clone()), *radius)
                    .map_err(|e| e.to_string())?;
                for (id, w) in &hits {
                    let _ = writeln!(out, "{id}\t{}", w.as_str());
                }
                report_query(out, hits.len(), &stats);
                Ok(())
            }
            Index::Vectors(tree, dim) => {
                let q = parse_vector(query, dim)?;
                let (hits, stats) = tree.range(&q, *radius).map_err(|e| e.to_string())?;
                for (id, _) in &hits {
                    let _ = writeln!(out, "{id}");
                }
                report_query(out, hits.len(), &stats);
                Ok(())
            }
        }),
        Command::Count {
            index,
            query,
            radius,
        } => with_index(index, |idx| match idx {
            Index::Words(tree) => {
                let (count, stats) = tree
                    .range_count(&Word::new(query.clone()), *radius)
                    .map_err(|e| e.to_string())?;
                let _ = writeln!(out, "{count}");
                report_query(out, count as usize, &stats);
                Ok(())
            }
            Index::Vectors(tree, dim) => {
                let q = parse_vector(query, dim)?;
                let (count, stats) = tree.range_count(&q, *radius).map_err(|e| e.to_string())?;
                let _ = writeln!(out, "{count}");
                report_query(out, count as usize, &stats);
                Ok(())
            }
        }),
        Command::Knn {
            index,
            query,
            k,
            alpha,
            approx,
            recall_target,
        } => with_index(index, |idx| match idx {
            Index::Words(tree) => {
                let q = Word::new(query.clone());
                let (nn, stats) =
                    run_knn_tuned(out, tree, &q, *k, *alpha, *approx, *recall_target)?;
                for (id, w, d) in &nn {
                    let _ = writeln!(out, "{id}\t{d}\t{}", w.as_str());
                }
                report_query(out, nn.len(), &stats);
                Ok(())
            }
            Index::Vectors(tree, dim) => {
                let q = parse_vector(query, dim)?;
                let (nn, stats) =
                    run_knn_tuned(out, tree, &q, *k, *alpha, *approx, *recall_target)?;
                for (id, _, d) in &nn {
                    let _ = writeln!(out, "{id}\t{d}");
                }
                report_query(out, nn.len(), &stats);
                Ok(())
            }
        }),
        Command::Batch {
            index,
            queries,
            radius,
            k,
            threads,
        } => {
            let text =
                std::fs::read_to_string(queries).map_err(|e| format!("open {queries:?}: {e}"))?;
            let lines: Vec<&str> = text
                .lines()
                .map(str::trim)
                .filter(|l| !l.is_empty())
                .collect();
            with_index_sharded(index, *threads, |idx| match idx {
                Index::Words(tree) => {
                    let qs: Vec<Word> = lines.iter().map(|l| Word::new(*l)).collect();
                    run_batch(out, tree, &qs, *radius, *k, *threads)
                }
                Index::Vectors(tree, dim) => {
                    let qs = lines
                        .iter()
                        .map(|l| parse_vector(l, dim))
                        .collect::<Result<Vec<FloatVec>, String>>()?;
                    run_batch(out, tree, &qs, *radius, *k, *threads)
                }
            })
        }
        Command::Stats { index } => with_index(index, |idx| {
            match idx {
                Index::Words(tree) => {
                    let _ = writeln!(out, "schema: words");
                    describe(
                        out,
                        tree.len(),
                        tree.storage_bytes(),
                        tree.table().num_pivots(),
                        tree.table().delta(),
                    );
                }
                Index::Vectors(tree, dim) => {
                    let _ = writeln!(out, "schema: vectors (dim {dim})");
                    describe(
                        out,
                        tree.len(),
                        tree.storage_bytes(),
                        tree.table().num_pivots(),
                        tree.table().delta(),
                    );
                }
            }
            Ok(())
        }),
        Command::Verify { index } => {
            let report = spb_core::verify_dir(index).map_err(|e| e.to_string())?;
            let _ = writeln!(
                out,
                "checked {} page(s), {} entrie(s)",
                report.pages_checked, report.entries_checked
            );
            if report.ok() {
                let _ = writeln!(out, "ok");
                Ok(())
            } else {
                for p in &report.problems {
                    let _ = writeln!(out, "problem: {}: {}", p.file, p.detail);
                }
                Err(format!("{} problem(s) found", report.problems.len()))
            }
        }
        Command::Recover { index } => {
            let report = spb_core::recover_dir(index).map_err(|e| e.to_string())?;
            if report.clean() {
                let _ = writeln!(out, "clean: nothing to recover");
            } else {
                let _ = writeln!(
                    out,
                    "recovered: {} txn(s) redone ({} page image(s)), {} txn(s) discarded, \
                     {} torn WAL byte(s), {} torn data byte(s)",
                    report.redone_txns,
                    report.redone_pages,
                    report.discarded_txns,
                    report.torn_wal_bytes,
                    report.torn_data_bytes
                );
            }
            Ok(())
        }
        Command::Cluster {
            input,
            shards,
            replicas,
            dir,
        } => {
            let file = std::fs::File::open(input).map_err(|e| format!("open {input:?}: {e}"))?;
            let words = load_words(io::BufReader::new(file)).map_err(|e| e.to_string())?;
            if words.len() < 2 {
                return Err("cluster needs at least two input words".to_owned());
            }
            let (base, throwaway) = match dir {
                Some(d) => (d.clone(), false),
                None => (
                    std::env::temp_dir().join(format!("spb-cluster-{}", std::process::id())),
                    true,
                ),
            };
            let result = run_cluster(out, &words, *shards, *replicas, &base);
            if throwaway {
                let _ = std::fs::remove_dir_all(&base);
            }
            result
        }
        Command::Serve { .. } | Command::Remote(_) => unreachable!("dispatched in run"),
    }
}

/// `spb-cli cluster`: launch, cross-check against a single node, then
/// (with replicas) kill shard 0's primary and cross-check again. Every
/// probe compares byte-for-byte; any divergence aborts with the failing
/// query in the message.
fn run_cluster(
    out: &mut String,
    words: &[Word],
    shards: usize,
    replicas: usize,
    base: &Path,
) -> Result<(), String> {
    let max_len = words.iter().map(Word::len).max().unwrap_or(1);
    let metric = EditDistance::new(max_len);
    let cfg = spb_cluster::ClusterConfig {
        shards,
        replicas,
        ..spb_cluster::ClusterConfig::default()
    };
    let mut cluster = spb_cluster::Cluster::launch(
        &base.join("cluster"),
        words,
        metric,
        Schema::Words { max_len },
        &cfg,
    )
    .map_err(|e| format!("cluster launch: {e}"))?;
    let _ = writeln!(
        out,
        "launched {} shard(s), {replicas} replica(s) each, over {} object(s)",
        cluster.num_shards(),
        words.len()
    );
    let reference = SpbTree::build(&base.join("single"), words, metric, &SpbConfig::default())
        .map_err(|e| format!("single-node build: {e}"))?;

    // Probe with real members (hits guaranteed) plus their neighbourhood.
    let probes: Vec<Word> = words.iter().take(8).cloned().collect();
    let router = cluster.router();
    let mut checks = 0usize;
    for q in &probes {
        for r in [1.0, 2.0] {
            compare_range(&router, &reference, q, r)?;
            checks += 1;
        }
        for k in [3usize, 10] {
            compare_knn(&router, &reference, q, k)?;
            checks += 1;
        }
    }
    let _ = writeln!(
        out,
        "cluster-identical: OK ({checks} checks across {} shard(s))",
        cluster.num_shards()
    );

    if replicas > 0 {
        cluster
            .sync_replicas()
            .map_err(|e| format!("replica sync: {e}"))?;
        cluster
            .kill_primary(0)
            .map_err(|e| format!("primary kill: {e}"))?;
        let router = cluster.router();
        for q in &probes {
            compare_range(&router, &reference, q, 2.0)?;
            compare_knn(&router, &reference, q, 3)?;
        }
        let _ = writeln!(
            out,
            "failover: OK (shard 0 primary killed; replicas answered identically)"
        );
    }
    cluster.shutdown().map_err(|e| format!("shutdown: {e}"))?;
    Ok(())
}

fn compare_range(
    router: &spb_cluster::Router<Word, EditDistance>,
    reference: &SpbTree<Word, EditDistance>,
    q: &Word,
    r: f64,
) -> Result<(), String> {
    let (got, _) = router
        .range(q, r)
        .map_err(|e| format!("router range: {e}"))?;
    let (hits, _) = reference.range(q, r).map_err(|e| e.to_string())?;
    let mut want: Vec<(u32, Vec<u8>)> = hits
        .into_iter()
        .map(|(id, o)| (id, spb_metric::MetricObject::encoded(&o)))
        .collect();
    want.sort_unstable_by_key(|&(id, _)| id);
    if got != want {
        return Err(format!(
            "cluster-identical: FAILED on range({:?}, {r}): cluster {} hit(s), single node {}",
            q.as_str(),
            got.len(),
            want.len()
        ));
    }
    Ok(())
}

fn compare_knn(
    router: &spb_cluster::Router<Word, EditDistance>,
    reference: &SpbTree<Word, EditDistance>,
    q: &Word,
    k: usize,
) -> Result<(), String> {
    let (got, _) = router.knn(q, k).map_err(|e| format!("router knn: {e}"))?;
    let (nn, _) = reference.knn(q, k).map_err(|e| e.to_string())?;
    let want: Vec<(u32, f64, Vec<u8>)> = nn
        .into_iter()
        .map(|(id, o, d)| (id, d, spb_metric::MetricObject::encoded(&o)))
        .collect();
    if got != want {
        return Err(format!(
            "cluster-identical: FAILED on knn({:?}, {k})",
            q.as_str()
        ));
    }
    Ok(())
}

enum Index {
    Words(SpbTree<Word, EditDistance>),
    Vectors(SpbTree<FloatVec, LpNorm>, usize),
}

fn with_index<F>(index: &Path, f: F) -> Result<(), String>
where
    F: FnOnce(&Index) -> Result<(), String>,
{
    with_index_sharded(index, 1, f)
}

fn with_index_sharded<F>(index: &Path, shards: usize, f: F) -> Result<(), String>
where
    F: FnOnce(&Index) -> Result<(), String>,
{
    let line = std::fs::read_to_string(schema_path(index)).map_err(|e| {
        format!(
            "read {:?}: {e} (is this an spb-cli index?)",
            schema_path(index)
        )
    })?;
    let schema = Schema::from_line(line.trim())?;
    let idx = match schema {
        Schema::Words { max_len } => Index::Words(
            SpbTree::open_sharded(index, EditDistance::new(max_len), 32, true, shards)
                .map_err(|e| e.to_string())?,
        ),
        Schema::Vectors { p, dim } => Index::Vectors(
            SpbTree::open_sharded(index, LpNorm::new(p as f64, dim, 1.0), 32, true, shards)
                .map_err(|e| e.to_string())?,
            dim,
        ),
    };
    f(&idx)
}

/// Runs a parsed batch (range when `radius` is set, kNN otherwise) and
/// reports per-query costs plus aggregate throughput.
fn run_batch<O, D>(
    out: &mut String,
    tree: &SpbTree<O, D>,
    qs: &[O],
    radius: Option<f64>,
    k: Option<usize>,
    threads: usize,
) -> Result<(), String>
where
    O: spb_metric::MetricObject,
    D: spb_metric::Distance<O>,
{
    let start = std::time::Instant::now();
    let per_query: Vec<(usize, spb_core::QueryStats)> = if let Some(r) = radius {
        let pairs: Vec<(O, f64)> = qs.iter().cloned().map(|q| (q, r)).collect();
        tree.range_batch(&pairs, threads)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(|(hits, stats)| (hits.len(), stats))
            .collect()
    } else {
        let k = k.expect("parser guarantees one of radius/k");
        tree.knn_batch(qs, k, threads)
            .map_err(|e| e.to_string())?
            .into_iter()
            .map(|(nn, stats)| (nn.len(), stats))
            .collect()
    };
    let elapsed = start.elapsed().as_secs_f64();
    for (i, (results, stats)) in per_query.iter().enumerate() {
        let _ = writeln!(
            out,
            "query {i}: {results} result(s); {} compdists, {} page accesses",
            stats.compdists, stats.page_accesses
        );
    }
    let qps = if elapsed > 0.0 {
        per_query.len() as f64 / elapsed
    } else {
        f64::INFINITY
    };
    let _ = writeln!(
        out,
        "# {} queries on {threads} thread(s): {:.3}s total, {qps:.1} queries/s",
        per_query.len(),
        elapsed
    );
    Ok(())
}

fn parse_vector(query: &str, dim: &usize) -> Result<FloatVec, String> {
    let coords: Result<Vec<f32>, _> = query.split(',').map(|c| c.trim().parse()).collect();
    let coords = coords.map_err(|e| format!("bad query vector: {e}"))?;
    if coords.len() != *dim {
        return Err(format!(
            "query has {} coordinates; the index stores {dim}-dimensional vectors",
            coords.len()
        ));
    }
    Ok(FloatVec::new(coords))
}

fn report_build(out: &mut String, b: spb_core::BuildStats, storage: u64) {
    let _ = writeln!(
        out,
        "built: {} objects, {} distance computations, {} page accesses, {:.1} KB, {:.2}s",
        b.num_objects,
        b.compdists,
        b.page_accesses,
        storage as f64 / 1024.0,
        b.duration.as_secs_f64()
    );
}

fn report_query(out: &mut String, results: usize, stats: &spb_core::QueryStats) {
    let _ = writeln!(
        out,
        "# {results} result(s); {} compdists, {} page accesses, {:.3} ms",
        stats.compdists,
        stats.page_accesses,
        stats.duration.as_secs_f64() * 1e3
    );
    if let Some(recall) = stats.recall {
        let _ = writeln!(out, "# recall: {recall:.3}");
    }
}

/// A kNN answer: `(id, object, distance)` triples plus query stats.
type KnnAnswer<O> = (Vec<(u32, O, f64)>, spb_core::QueryStats);

/// Runs a local kNN query with the requested accuracy mode:
/// `--recall-target` auto-tunes `alpha` on the query itself (walking
/// the ladder, exact `1.0` last), `--approx` measures recall for the
/// given `alpha`, and the default runs `alpha` unmeasured (exact when
/// `alpha = 1`).
fn run_knn_tuned<O, D>(
    out: &mut String,
    tree: &SpbTree<O, D>,
    q: &O,
    k: usize,
    alpha: f64,
    approx: bool,
    recall_target: Option<f64>,
) -> Result<KnnAnswer<O>, String>
where
    O: spb_metric::MetricObject,
    D: spb_metric::Distance<O>,
{
    if let Some(target) = recall_target {
        let tuned = tree
            .tune_knn_alpha(std::slice::from_ref(q), k, target)
            .map_err(|e| e.to_string())?;
        let _ = writeln!(
            out,
            "# tuned alpha: {} (measured recall {:.3}, target {target})",
            tuned.param, tuned.achieved
        );
        tree.knn_approx_measured(q, k, tuned.param)
            .map_err(|e| e.to_string())
    } else if approx {
        tree.knn_approx_measured(q, k, alpha)
            .map_err(|e| e.to_string())
    } else {
        tree.knn_approx(q, k, alpha).map_err(|e| e.to_string())
    }
}

fn describe(out: &mut String, len: u64, storage: u64, pivots: usize, delta: f64) {
    let _ = writeln!(out, "objects: {len}");
    let _ = writeln!(out, "storage: {:.1} KB", storage as f64 / 1024.0);
    let _ = writeln!(out, "pivots:  {pivots}");
    let _ = writeln!(out, "delta:   {delta}");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_owned()).collect()
    }

    #[test]
    fn parses_build() {
        let cmd = parse_args(&args(
            "build --input words.txt --index ./idx --pivots 7 --curve z",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Build {
                input: "words.txt".into(),
                index: "./idx".into(),
                schema_flag: "words".into(),
                pivots: 7,
                curve: "z".into(),
                accel: "off".into(),
            }
        );
    }

    #[test]
    fn parses_queries_with_defaults() {
        let cmd = parse_args(&args("knn --index ./idx --query hello")).unwrap();
        assert_eq!(
            cmd,
            Command::Knn {
                index: "./idx".into(),
                query: "hello".into(),
                k: 10,
                alpha: 1.0,
                approx: false,
                recall_target: None,
            }
        );
        assert!(parse_args(&args("range --index ./idx --query hello")).is_err());
        assert!(parse_args(&args("bogus --x y")).is_err());
        assert!(parse_args(&[]).is_err());
    }

    #[test]
    fn parses_approx_flags() {
        // `--approx` is a bare switch (no value), composable with other
        // flags in any position.
        let cmd = parse_args(&args(
            "knn --index ./idx --approx --query hello --alpha 2.0",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Knn {
                index: "./idx".into(),
                query: "hello".into(),
                k: 10,
                alpha: 2.0,
                approx: true,
                recall_target: None,
            }
        );
        let cmd = parse_args(&args("knn --index ./idx --query hello --recall-target 0.9")).unwrap();
        assert_eq!(
            cmd,
            Command::Knn {
                index: "./idx".into(),
                query: "hello".into(),
                k: 10,
                alpha: 1.0,
                approx: false,
                recall_target: Some(0.9),
            }
        );
        assert!(parse_args(&args(
            "knn --index ./idx --query hello --recall-target high"
        ))
        .is_err());
        let cmd = parse_args(&args(
            "remote knn --addr 127.0.0.1:7878 --query hello --approx --alpha 1.5",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Remote(RemoteCommand::Knn {
                addr: "127.0.0.1:7878".into(),
                query: "hello".into(),
                k: 10,
                approx: true,
                alpha: 1.5,
                deadline_ms: 0,
            })
        );
    }

    #[test]
    fn schema_roundtrip() {
        for s in [
            Schema::Words { max_len: 34 },
            Schema::Vectors { p: 5, dim: 16 },
        ] {
            assert_eq!(Schema::from_line(&s.to_line()).unwrap(), s);
        }
        assert!(Schema::from_line("nonsense").is_err());
    }

    #[test]
    fn loads_words_and_vectors() {
        let words = load_words(io::Cursor::new("alpha\n\n beta \n")).unwrap();
        assert_eq!(words.len(), 2);
        assert_eq!(words[1].as_str(), "beta");

        let (vecs, dim) = load_vectors(io::Cursor::new("0.1, 0.2\n0.3,0.4\n")).unwrap();
        assert_eq!((vecs.len(), dim), (2, 2));
        assert!(load_vectors(io::Cursor::new("0.1,0.2\n0.3\n")).is_err());
        assert!(load_vectors(io::Cursor::new("0.1,zzz\n")).is_err());
    }

    #[test]
    fn build_then_query_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spbcli-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("words.txt");
        std::fs::write(&data, "carrot\ncarrots\nparrot\nbanana\napple\n").unwrap();
        let index = dir.join("idx");

        let mut out = String::new();
        run(
            &Command::Build {
                input: data,
                index: index.clone(),
                schema_flag: "words".into(),
                pivots: 2,
                curve: "hilbert".into(),
                accel: "off".into(),
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("built: 5 objects"));

        let mut out = String::new();
        run(
            &Command::Range {
                index: index.clone(),
                query: "carrot".into(),
                radius: 1.0,
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("carrot"));
        assert!(out.contains("carrots"));
        assert!(!out.contains("banana"));

        let mut out = String::new();
        run(
            &Command::Knn {
                index: index.clone(),
                query: "parrots".into(),
                k: 2,
                alpha: 1.0,
                approx: false,
                recall_target: None,
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("parrot"));

        // `--recall-target` tunes alpha and reports measured recall.
        let mut out = String::new();
        run(
            &Command::Knn {
                index: index.clone(),
                query: "parrots".into(),
                k: 2,
                alpha: 1.0,
                approx: false,
                recall_target: Some(1.0),
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("tuned alpha"), "missing tune report: {out}");
        assert!(out.contains("# recall:"), "missing recall line: {out}");

        let mut out = String::new();
        run(
            &Command::Stats {
                index: index.clone(),
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("objects: 5"));

        // `--accel learned` persists a model next to the index and the
        // learned index answers identically.
        let accel_index = dir.join("idx-accel");
        let data2 = dir.join("words2.txt");
        std::fs::write(&data2, "carrot\ncarrots\nparrot\nbanana\napple\n").unwrap();
        let mut out = String::new();
        run(
            &Command::Build {
                input: data2,
                index: accel_index.clone(),
                schema_flag: "words".into(),
                pivots: 2,
                curve: "hilbert".into(),
                accel: "learned".into(),
            },
            &mut out,
        )
        .unwrap();
        assert!(accel_index.join("spb.model").exists());
        let mut out = String::new();
        run(
            &Command::Range {
                index: accel_index,
                query: "carrot".into(),
                radius: 1.0,
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("carrots"));

        // A freshly built index verifies clean and has nothing to recover.
        let mut out = String::new();
        run(
            &Command::Verify {
                index: index.clone(),
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("ok"), "out = {out}");

        let mut out = String::new();
        run(
            &Command::Recover {
                index: index.clone(),
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("clean"), "out = {out}");

        // Corrupt a page: verify reports it instead of passing.
        let bpt = index.join("index.bpt");
        let mut bytes = std::fs::read(&bpt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&bpt, &bytes).unwrap();
        let mut out = String::new();
        let err = run(&Command::Verify { index }, &mut out).unwrap_err();
        assert!(err.message.contains("problem"), "err = {err}, out = {out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_batch() {
        let cmd = parse_args(&args(
            "batch --index ./idx --queries q.txt --radius 2 --threads 4",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                index: "./idx".into(),
                queries: "q.txt".into(),
                radius: Some(2.0),
                k: None,
                threads: 4,
            }
        );
        let cmd = parse_args(&args("batch --index ./idx --queries q.txt --k 3")).unwrap();
        assert_eq!(
            cmd,
            Command::Batch {
                index: "./idx".into(),
                queries: "q.txt".into(),
                radius: None,
                k: Some(3),
                threads: 1,
            }
        );
        // Exactly one of --radius / --k.
        assert!(parse_args(&args("batch --index ./idx --queries q.txt")).is_err());
        assert!(parse_args(&args(
            "batch --index ./idx --queries q.txt --radius 1 --k 3"
        ))
        .is_err());
    }

    #[test]
    fn batch_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spbcli-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("words.txt");
        std::fs::write(&data, "carrot\ncarrots\nparrot\nbanana\napple\n").unwrap();
        let index = dir.join("idx");
        let mut out = String::new();
        run(
            &Command::Build {
                input: data,
                index: index.clone(),
                schema_flag: "words".into(),
                pivots: 2,
                curve: "hilbert".into(),
                accel: "off".into(),
            },
            &mut out,
        )
        .unwrap();

        let qfile = dir.join("queries.txt");
        std::fs::write(&qfile, "carrot\nbanana\n").unwrap();
        let mut out = String::new();
        run(
            &Command::Batch {
                index: index.clone(),
                queries: qfile.clone(),
                radius: Some(1.0),
                k: None,
                threads: 2,
            },
            &mut out,
        )
        .unwrap();
        // carrot → {carrot, carrots, parrot} at edit distance ≤ 1.
        assert!(out.contains("query 0: 3 result(s)"), "out = {out}");
        assert!(out.contains("query 1: 1 result(s)"), "out = {out}");
        assert!(out.contains("2 queries on 2 thread(s)"), "out = {out}");

        let mut out = String::new();
        run(
            &Command::Batch {
                index,
                queries: qfile,
                radius: None,
                k: Some(2),
                threads: 2,
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("query 0: 2 result(s)"), "out = {out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_verify_and_recover() {
        assert_eq!(
            parse_args(&args("verify --index ./idx")).unwrap(),
            Command::Verify {
                index: "./idx".into()
            }
        );
        assert_eq!(
            parse_args(&args("recover --index ./idx")).unwrap(),
            Command::Recover {
                index: "./idx".into()
            }
        );
        assert!(parse_args(&args("verify")).is_err());
    }

    #[test]
    fn vector_index_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spbcli-vec-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("vecs.csv");
        std::fs::write(&data, "0.1,0.1\n0.12,0.1\n0.9,0.9\n").unwrap();
        let index = dir.join("idx");

        let mut out = String::new();
        run(
            &Command::Build {
                input: data,
                index: index.clone(),
                schema_flag: "vectors:l2".into(),
                pivots: 2,
                curve: "hilbert".into(),
                accel: "off".into(),
            },
            &mut out,
        )
        .unwrap();

        let mut out = String::new();
        run(
            &Command::Count {
                index: index.clone(),
                query: "0.1,0.1".into(),
                radius: 0.05,
            },
            &mut out,
        )
        .unwrap();
        assert!(out.starts_with("2\n"), "out = {out}");

        // Wrong dimensionality is a helpful error, not a panic.
        let mut out = String::new();
        let err = run(
            &Command::Range {
                index,
                query: "0.1".into(),
                radius: 0.1,
            },
            &mut out,
        )
        .unwrap_err();
        assert!(err.message.contains("2-dimensional"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parses_serve_and_remote() {
        let cmd = parse_args(&args(
            "serve --index ./idx --addr 127.0.0.1:9000 --max-inflight 2",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Serve {
                index: "./idx".into(),
                addr: "127.0.0.1:9000".into(),
                max_inflight: 2,
                max_queue: 64,
                max_connections: 64,
                threads: 4,
                trace: false,
            }
        );
        let cmd = parse_args(&args("serve --index ./idx --trace on")).unwrap();
        assert!(matches!(cmd, Command::Serve { trace: true, .. }));
        assert!(parse_args(&args("serve --index ./idx --trace maybe")).is_err());
        let cmd = parse_args(&args("stats --addr 127.0.0.1:9000")).unwrap();
        assert_eq!(
            cmd,
            Command::Remote(RemoteCommand::ObsStats {
                addr: "127.0.0.1:9000".into(),
            })
        );
        let cmd = parse_args(&args(
            "remote range --addr localhost:9000 --query carrot --radius 1 --deadline-ms 500",
        ))
        .unwrap();
        assert_eq!(
            cmd,
            Command::Remote(RemoteCommand::Range {
                addr: "localhost:9000".into(),
                query: "carrot".into(),
                radius: 1.0,
                deadline_ms: 500,
            })
        );
        assert!(parse_args(&args("remote --addr x:1")).is_err(), "no sub");
        assert!(
            parse_args(&args("remote bogus --addr x:1")).is_err(),
            "bad sub"
        );
        assert!(
            parse_args(&args("remote range --query q --radius 1")).is_err(),
            "no addr"
        );
        assert!(
            parse_args(&args(
                "remote batch --addr x:1 --queries q.txt --radius 1 --k 2"
            ))
            .is_err(),
            "both radius and k"
        );
    }

    #[test]
    fn parses_cluster() {
        let cmd = parse_args(&args("cluster --input words.txt --shards 3 --replicas 1")).unwrap();
        assert_eq!(
            cmd,
            Command::Cluster {
                input: "words.txt".into(),
                shards: 3,
                replicas: 1,
                dir: None,
            }
        );
        let cmd = parse_args(&args("cluster --input w.txt --dir ./work")).unwrap();
        assert_eq!(
            cmd,
            Command::Cluster {
                input: "w.txt".into(),
                shards: 2,
                replicas: 0,
                dir: Some("./work".into()),
            }
        );
        assert!(parse_args(&args("cluster --shards 2")).is_err(), "no input");
    }

    #[test]
    fn cluster_roundtrip_prints_greppable_markers() {
        let dir = std::env::temp_dir().join(format!("spbcli-cluster-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("words.txt");
        let mut text = String::new();
        for i in 0..60 {
            let _ = writeln!(text, "word{:03}x{}", i, "abcdefgh".split_at(i % 8).0);
        }
        std::fs::write(&data, text).unwrap();

        let mut out = String::new();
        run(
            &Command::Cluster {
                input: data,
                shards: 3,
                replicas: 1,
                dir: Some(dir.join("work")),
            },
            &mut out,
        )
        .unwrap();
        assert!(out.contains("cluster-identical: OK"), "out = {out}");
        assert!(out.contains("failover: OK"), "out = {out}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression: a *newer* server's error reply — unknown error-code
    /// byte, `server_version: 2`, trailing body fields this client has
    /// never heard of — must exit with the dedicated version-mismatch
    /// code, not trip over the unknown bytes and exit 1. The frame is
    /// handcrafted so the test pins the wire layout, not our encoder.
    #[test]
    fn remote_version_mismatch_from_newer_server_exits_13() {
        use std::io::{Read as _, Write as _};
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            // Drain the client's ping frame: header, then payload.
            let mut header = [0u8; spb_server::wire::FRAME_HEADER];
            conn.read_exact(&mut header).unwrap();
            let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
            let mut payload = vec![0u8; len as usize];
            conn.read_exact(&mut payload).unwrap();
            // Reply: OP_ERROR (0xFF), error code 99 (unknown to v1),
            // server_version 2, an lstr message, then two trailing bytes
            // of imaginary v2 body the client must ignore.
            let mut body = vec![spb_server::PROTOCOL_VERSION, 0xFF, 99, 2];
            let msg = b"speak v2";
            body.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            body.extend_from_slice(msg);
            body.extend_from_slice(&[0xDE, 0xAD]);
            spb_server::wire::write_frame(&mut conn, &body).unwrap();
            conn.flush().unwrap();
        });

        let mut out = String::new();
        let err = run(&Command::Remote(RemoteCommand::Ping { addr }), &mut out).unwrap_err();
        server.join().unwrap();
        assert_eq!(err.code, EXIT_VERSION, "message: {}", err.message);
        assert!(err.message.contains('2'), "message: {}", err.message);
    }

    #[test]
    fn remote_connection_refused_maps_to_exit_10() {
        // Port 1 on localhost: nothing listens there.
        let mut out = String::new();
        let err = run(
            &Command::Remote(RemoteCommand::Ping {
                addr: "127.0.0.1:1".into(),
            }),
            &mut out,
        )
        .unwrap_err();
        assert_eq!(err.code, EXIT_CONNECT, "message: {}", err.message);
    }

    #[test]
    fn client_errors_map_to_distinct_exit_codes() {
        let server_err = |code| ClientError::Server {
            code,
            server_version: 1,
            message: "x".into(),
        };
        assert_eq!(
            client_error(server_err(ErrorCode::Overloaded)).code,
            EXIT_OVERLOADED
        );
        assert_eq!(
            client_error(server_err(ErrorCode::DeadlineExceeded)).code,
            EXIT_DEADLINE
        );
        assert_eq!(
            client_error(server_err(ErrorCode::VersionMismatch)).code,
            EXIT_VERSION
        );
        assert_eq!(client_error(server_err(ErrorCode::Internal)).code, 1);
        assert_eq!(
            client_error(ClientError::Wire(spb_server::WireError::VersionMismatch {
                got: 9
            }))
            .code,
            EXIT_VERSION
        );
    }

    #[test]
    fn serve_then_remote_roundtrip() {
        let dir = std::env::temp_dir().join(format!("spbcli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let data = dir.join("words.txt");
        std::fs::write(&data, "carrot\ncarrots\nparrot\nbanana\napple\n").unwrap();
        let index = dir.join("idx");
        let mut out = String::new();
        run(
            &Command::Build {
                input: data,
                index: index.clone(),
                schema_flag: "words".into(),
                pivots: 2,
                curve: "hilbert".into(),
                accel: "off".into(),
            },
            &mut out,
        )
        .unwrap();

        // Serve on an OS-assigned port in a background thread; learn the
        // address through the on_start hook.
        let (tx, rx) = std::sync::mpsc::channel();
        let idx = index.clone();
        let server = std::thread::spawn(move || {
            serve_blocking(&idx, "127.0.0.1:0", ServerConfig::default(), |a| {
                tx.send(a).unwrap();
            })
        });
        let addr = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .unwrap()
            .to_string();

        let mut out = String::new();
        run(
            &Command::Remote(RemoteCommand::Ping { addr: addr.clone() }),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("objects: 5"), "out = {out}");

        let mut out = String::new();
        run(
            &Command::Remote(RemoteCommand::Range {
                addr: addr.clone(),
                query: "carrot".into(),
                radius: 1.0,
                deadline_ms: 0,
            }),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("carrots"), "out = {out}");
        assert!(!out.contains("banana"), "out = {out}");

        let mut out = String::new();
        run(
            &Command::Remote(RemoteCommand::Insert {
                addr: addr.clone(),
                object: "carrotz".into(),
                deadline_ms: 0,
            }),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("inserted"), "out = {out}");

        let qfile = dir.join("queries.txt");
        std::fs::write(&qfile, "carrot\nbanana\n").unwrap();
        let mut out = String::new();
        run(
            &Command::Remote(RemoteCommand::Batch {
                addr: addr.clone(),
                queries: qfile,
                radius: Some(1.0),
                k: None,
                deadline_ms: 0,
            }),
            &mut out,
        )
        .unwrap();
        // carrot → {carrot, carrots, carrotz, parrot} at distance ≤ 1.
        assert!(out.contains("query 0: 4 result(s)"), "out = {out}");
        assert!(out.contains("query 1: 1 result(s)"), "out = {out}");

        let mut out = String::new();
        run(
            &Command::Remote(RemoteCommand::Stats { addr: addr.clone() }),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("objects: 6"), "out = {out}");
        assert!(out.contains("deadline misses: 0"), "out = {out}");

        // The observability snapshot travels the wire and renders: the
        // batch above must show up in the served counter and leave at
        // least one traversal-phase latency sample.
        let mut out = String::new();
        run(
            &Command::Remote(RemoteCommand::ObsStats { addr: addr.clone() }),
            &mut out,
        )
        .unwrap();
        assert!(out.contains("admission.served"), "out = {out}");
        assert!(out.contains("phase.traversal"), "out = {out}");

        let mut out = String::new();
        run(&Command::Remote(RemoteCommand::Shutdown { addr }), &mut out).unwrap();
        server.join().unwrap().unwrap();

        // The shutdown drained and checkpointed: the index reopens clean.
        let mut out = String::new();
        run(&Command::Verify { index }, &mut out).unwrap();
        assert!(out.contains("ok"), "out = {out}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
