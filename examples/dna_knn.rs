//! Computational-biology scenario from the paper's introduction: find
//! protein/DNA fragments similar to a query fragment. DNA is the paper's
//! hardest dataset (lowest pivot precision), which is why it defaults to
//! the **greedy** kNN traversal (Table 5) — this example measures both
//! strategies and the cost model's prediction.
//!
//! Run with:
//! ```text
//! cargo run --release --example dna_knn
//! ```

use spb::metric::dataset;
use spb::storage::TempDir;
use spb::{SpbConfig, SpbTree, Traversal};

fn main() -> std::io::Result<()> {
    let fragments = dataset::dna(10_000, 5);
    let metric = dataset::dna_metric();

    let dir = TempDir::new("dna-knn");
    let index = SpbTree::build(dir.path(), &fragments, metric, &SpbConfig::default())?;
    println!(
        "indexed {} fragments of length 108 ({} KB on disk)",
        index.len(),
        index.storage_bytes() / 1024
    );

    let query = &fragments[123];
    println!("query: {}...", &query.as_str()[..32]);

    // Predict, then run with both traversals.
    let q_phi = index.table().phi(index.metric().inner(), query);
    let est = index.cost_model().estimate_knn(&q_phi, 8);
    println!(
        "cost model predicts ~{:.0} compdists / ~{:.0} page accesses for k=8",
        est.compdists, est.page_accesses
    );

    for (name, traversal) in [
        ("incremental", Traversal::Incremental),
        ("greedy", Traversal::Greedy),
    ] {
        index.flush_caches();
        let (nn, stats) = index.knn_with(query, 8, traversal)?;
        println!(
            "{name:>12}: {} compdists, {} PA ({} B+-tree / {} RAF), {:.2} ms",
            stats.compdists,
            stats.page_accesses,
            stats.btree_pa,
            stats.raf_pa,
            stats.duration.as_secs_f64() * 1e3
        );
        if name == "greedy" {
            println!("  nearest fragments:");
            for (id, frag, d) in nn.iter().take(4) {
                println!(
                    "    #{id} at angular distance {d:.4}: {}...",
                    &frag.as_str()[..24]
                );
            }
        }
    }
    Ok(())
}
