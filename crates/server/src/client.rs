//! Blocking client for the wire protocol, reused by `spb-cli remote`.
//!
//! One [`Client`] wraps one TCP connection. The typed helpers issue one
//! request and wait for its response; [`Client::send_many`] pipelines a
//! whole slice of requests — all frames are written before any reply is
//! read, and the server answers them strictly in request order. Frames
//! encode into (and responses decode from) per-client scratch buffers
//! that are reused across calls, so a steady request stream allocates
//! nothing on the framing path. Server-side failures surface as
//! [`ClientError::Server`] carrying the typed [`ErrorCode`], which is
//! what `spb-cli` maps to its distinct exit codes.

use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{
    frame_into, read_frame_into, ErrorCode, Request, Response, WireError, WireHit, WireNn,
    WireStats, DEFAULT_MAX_FRAME,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Could not establish the TCP connection.
    Connect(io::Error),
    /// The connection died mid-exchange.
    Io(io::Error),
    /// The response did not decode (framing, CRC, version).
    Wire(WireError),
    /// The server answered with a typed error.
    Server {
        /// The failure class.
        code: ErrorCode,
        /// The server's protocol version (diagnoses `VersionMismatch`).
        server_version: u8,
        /// Human-readable detail.
        message: String,
    },
    /// The server answered with a response of the wrong kind.
    Unexpected(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Connect(e) => write!(f, "connect: {e}"),
            ClientError::Io(e) => write!(f, "connection lost: {e}"),
            ClientError::Wire(e) => write!(f, "protocol error: {e}"),
            ClientError::Server { code, message, .. } => write!(f, "server: {code}: {message}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        match e {
            WireError::Io(e) => ClientError::Io(e),
            other => ClientError::Wire(other),
        }
    }
}

/// A blocking connection to an `spb-server`.
pub struct Client {
    stream: TcpStream,
    max_frame: u32,
    /// Reusable encode scratch: request frames are serialised here and
    /// written with one syscall (grow-once, no per-request `Vec`).
    wr: Vec<u8>,
    /// Reusable decode scratch: response payloads land here.
    rd: Vec<u8>,
}

impl Client {
    /// Connects to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Connect)?;
        stream.set_nodelay(true).map_err(ClientError::Io)?;
        Ok(Client {
            stream,
            max_frame: DEFAULT_MAX_FRAME,
            wr: Vec::new(),
            rd: Vec::new(),
        })
    }

    /// Sends one request and reads one response. Server-side `Error`
    /// responses are returned as `Ok(Response::Error { .. })` here; the
    /// typed helpers below convert them to [`ClientError::Server`].
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.wr.clear();
        frame_into(&mut self.wr, |out| req.encode_into(out));
        self.stream.write_all(&self.wr).map_err(ClientError::Io)?;
        read_frame_into(&mut self.stream, self.max_frame, &mut self.rd)?;
        Ok(Response::decode(&self.rd)?)
    }

    /// Pipelines `reqs`: every frame is encoded into one scratch buffer
    /// and written before any reply is read, then the responses are
    /// read back in request order (the order the server guarantees).
    ///
    /// Responses — including per-request typed `Error` responses — are
    /// returned positionally; an `Err` from this method means the
    /// connection itself broke. Pipelining past the server's
    /// `max_pipeline` (default 256) is safe: the server simply stops
    /// reading the socket until earlier responses are owed, so depth
    /// beyond it only stops improving throughput.
    pub fn send_many(&mut self, reqs: &[Request]) -> Result<Vec<Response>, ClientError> {
        self.wr.clear();
        for req in reqs {
            frame_into(&mut self.wr, |out| req.encode_into(out));
        }
        self.stream.write_all(&self.wr).map_err(ClientError::Io)?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            read_frame_into(&mut self.stream, self.max_frame, &mut self.rd)?;
            out.push(Response::decode(&self.rd)?);
        }
        Ok(out)
    }

    fn expect<T>(
        &mut self,
        req: &Request,
        pick: impl FnOnce(Response) -> Result<T, Response>,
    ) -> Result<T, ClientError> {
        match self.request(req)? {
            Response::Error {
                code,
                server_version,
                message,
            } => Err(ClientError::Server {
                code,
                server_version,
                message,
            }),
            other => pick(other).map_err(|resp| {
                ClientError::Unexpected(format!("{resp:?} does not answer {req:?}"))
            }),
        }
    }

    /// Handshake: returns the server's `(version, schema_line, len)`.
    pub fn ping(&mut self) -> Result<(u8, String, u64), ClientError> {
        self.expect(&Request::Ping, |r| match r {
            Response::Pong {
                version,
                schema,
                len,
            } => Ok((version, schema, len)),
            other => Err(other),
        })
    }

    /// `RQ(q, r)` over the wire; `deadline_ms = 0` means no deadline.
    pub fn range(
        &mut self,
        obj: &[u8],
        radius: f64,
        deadline_ms: u32,
    ) -> Result<(Vec<WireHit>, WireStats), ClientError> {
        let req = Request::Range {
            deadline_ms,
            radius,
            obj: obj.to_vec(),
        };
        self.expect(&req, |r| match r {
            Response::Range { hits, stats } => Ok((hits, stats)),
            other => Err(other),
        })
    }

    /// `kNN(q, k)` over the wire.
    pub fn knn(
        &mut self,
        obj: &[u8],
        k: u32,
        deadline_ms: u32,
    ) -> Result<(Vec<WireNn>, WireStats), ClientError> {
        let req = Request::Knn {
            deadline_ms,
            k,
            obj: obj.to_vec(),
        };
        self.expect(&req, |r| match r {
            Response::Knn { hits, stats } => Ok((hits, stats)),
            other => Err(other),
        })
    }

    /// Approximate `RQ(q, r)` with the pruning radius contracted to
    /// `r · contraction` (precision stays exact, recall is traded).
    pub fn range_approx(
        &mut self,
        obj: &[u8],
        radius: f64,
        contraction: f64,
        deadline_ms: u32,
    ) -> Result<(Vec<WireHit>, WireStats), ClientError> {
        let req = Request::RangeApprox {
            deadline_ms,
            radius,
            contraction,
            obj: obj.to_vec(),
        };
        self.expect(&req, |r| match r {
            Response::Range { hits, stats } => Ok((hits, stats)),
            other => Err(other),
        })
    }

    /// α-approximate `kNN(q, k)` over the wire (`alpha ≥ 1`).
    pub fn knn_approx(
        &mut self,
        obj: &[u8],
        k: u32,
        alpha: f64,
        deadline_ms: u32,
    ) -> Result<(Vec<WireNn>, WireStats), ClientError> {
        let req = Request::KnnApprox {
            deadline_ms,
            k,
            alpha,
            obj: obj.to_vec(),
        };
        self.expect(&req, |r| match r {
            Response::Knn { hits, stats } => Ok((hits, stats)),
            other => Err(other),
        })
    }

    /// Inserts one encoded object.
    pub fn insert(&mut self, obj: &[u8], deadline_ms: u32) -> Result<WireStats, ClientError> {
        let req = Request::Insert {
            deadline_ms,
            obj: obj.to_vec(),
        };
        self.expect(&req, |r| match r {
            Response::Insert { stats } => Ok(stats),
            other => Err(other),
        })
    }

    /// Deletes one encoded object; returns whether it existed.
    pub fn delete(
        &mut self,
        obj: &[u8],
        deadline_ms: u32,
    ) -> Result<(bool, WireStats), ClientError> {
        let req = Request::Delete {
            deadline_ms,
            obj: obj.to_vec(),
        };
        self.expect(&req, |r| match r {
            Response::Delete { found, stats } => Ok((found, stats)),
            other => Err(other),
        })
    }

    /// A batch of range queries sharing one radius.
    pub fn batch_range(
        &mut self,
        objs: Vec<Vec<u8>>,
        radius: f64,
        deadline_ms: u32,
    ) -> Result<Vec<(Vec<WireHit>, WireStats)>, ClientError> {
        let req = Request::BatchRange {
            deadline_ms,
            radius,
            objs,
        };
        self.expect(&req, |r| match r {
            Response::BatchRange { queries } => Ok(queries),
            other => Err(other),
        })
    }

    /// A batch of kNN queries sharing one `k`.
    pub fn batch_knn(
        &mut self,
        objs: Vec<Vec<u8>>,
        k: u32,
        deadline_ms: u32,
    ) -> Result<Vec<(Vec<WireNn>, WireStats)>, ClientError> {
        let req = Request::BatchKnn {
            deadline_ms,
            k,
            objs,
        };
        self.expect(&req, |r| match r {
            Response::BatchKnn { queries } => Ok(queries),
            other => Err(other),
        })
    }

    /// Index + service statistics.
    pub fn stats(&mut self) -> Result<Response, ClientError> {
        self.expect(&Request::Stats, |r| match r {
            s @ Response::Stats { .. } => Ok(s),
            other => Err(other),
        })
    }

    /// The server's full observability snapshot: every registered
    /// counter, gauge and latency histogram, plus recent trace events
    /// when the server runs with tracing enabled.
    pub fn obs_stats(&mut self) -> Result<spb_obs::Snapshot, ClientError> {
        self.expect(&Request::ObsStats, |r| match r {
            Response::ObsStats { snapshot } => Ok(snapshot),
            other => Err(other),
        })
    }

    /// Replication pull: WAL frames from `from_lsn` to the committed
    /// end. Returns `(wal_len, frames)`; `wal_len < from_lsn` means the
    /// primary checkpointed and the caller must re-bootstrap.
    pub fn wal_ship(&mut self, from_lsn: u64) -> Result<(u64, Vec<u8>), ClientError> {
        self.expect(&Request::WalShip { from_lsn }, |r| match r {
            Response::WalShip { wal_len, frames } => Ok((wal_len, frames)),
            other => Err(other),
        })
    }

    /// Asks the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.expect(&Request::Shutdown, |r| match r {
            Response::Shutdown => Ok(()),
            other => Err(other),
        })
    }
}
