//! The process-global metrics registry.
//!
//! Metrics are created by name with [`counter`] / [`gauge`] /
//! [`histogram`]: the first call registers, later calls return the same
//! underlying metric (so two buffer pools naming the same per-shard
//! counter share it, and totals stay process-wide). Instrumented code
//! calls these once — at construction or through a `OnceLock` — and
//! holds the `Arc`, so the registry's mutexes are touched only at
//! registration and snapshot time, never on the per-event fast path.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::trace::TraceEvent;

/// A monotonically increasing counter (relaxed atomics).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// An instantaneous signed value (queue depths, active connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn adjust(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The name → metric tables. One process-global instance lives behind
/// [`global`]; tests may build private registries.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    hists: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn poison_free<T>(r: Result<T, std::sync::PoisonError<T>>) -> T {
    // A panicking registrant cannot corrupt a Vec push that completed;
    // recover the guard rather than propagate the poison.
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get-or-register a counter under `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut t = poison_free(self.counters.lock());
        if let Some((_, c)) = t.iter().find(|(n, _)| n == name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::new());
        t.push((name.to_owned(), Arc::clone(&c)));
        c
    }

    /// Get-or-register a gauge under `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut t = poison_free(self.gauges.lock());
        if let Some((_, g)) = t.iter().find(|(n, _)| n == name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::new());
        t.push((name.to_owned(), Arc::clone(&g)));
        g
    }

    /// Get-or-register a histogram under `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut t = poison_free(self.hists.lock());
        if let Some((_, h)) = t.iter().find(|(n, _)| n == name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new());
        t.push((name.to_owned(), Arc::clone(&h)));
        h
    }

    /// Point-in-time view of every registered metric (sorted by name)
    /// plus the recent trace events when the [`crate::trace`] ring is
    /// enabled.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<(String, u64)> = poison_free(self.counters.lock())
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let mut gauges: Vec<(String, i64)> = poison_free(self.gauges.lock())
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let mut hists: Vec<(String, HistogramSnapshot)> = poison_free(self.hists.lock())
            .iter()
            .map(|(n, h)| (n.clone(), h.snapshot()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            gauges,
            hists,
            traces: crate::trace::recent(),
        }
    }
}

/// A serializable point-in-time view of the registry. This is what the
/// `ObsStats` wire op ships to `spb-cli stats`.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter name → value.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value.
    pub gauges: Vec<(String, i64)>,
    /// Histogram name → summary.
    pub hists: Vec<(String, HistogramSnapshot)>,
    /// Recent trace events (empty unless the trace ring is enabled).
    pub traces: Vec<TraceEvent>,
}

impl Snapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }

    /// Looks up a histogram summary by name.
    pub fn hist(&self, name: &str) -> Option<HistogramSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|&(_, h)| h)
    }
}

/// The process-global registry.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Get-or-register a counter in the global registry.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Get-or-register a gauge in the global registry.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Get-or-register a histogram in the global registry.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

/// Snapshot of the global registry.
pub fn snapshot() -> Snapshot {
    global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_register_returns_the_same_metric() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.incr();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!Arc::ptr_eq(&a, &r.counter("y")));
    }

    #[test]
    fn snapshot_reflects_all_three_kinds() {
        let r = Registry::new();
        r.counter("c").add(7);
        r.gauge("g").set(-3);
        r.histogram("h").record(100);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(7));
        assert_eq!(s.gauge("g"), Some(-3));
        let h = s.hist("h").expect("registered histogram");
        assert_eq!(h.count, 1);
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter("zz");
        r.counter("aa");
        let s = r.snapshot();
        let names: Vec<&str> = s.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["aa", "zz"]);
    }

    #[test]
    fn global_registry_is_shared() {
        let c = counter("registry-test.shared");
        c.add(5);
        assert_eq!(
            snapshot().counter("registry-test.shared"),
            Some(counter("registry-test.shared").get())
        );
    }
}
