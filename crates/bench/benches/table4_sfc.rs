//! Table 4 bench: kNN latency under the Hilbert vs the Z-order curve.

use criterion::{criterion_group, criterion_main, Criterion};
use spb_bench::experiments::common::build_spb;
use spb_bench::Scale;
use spb_core::{SpbConfig, Traversal};
use spb_metric::dataset;
use spb_sfc::CurveKind;

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let data = dataset::color(scale.color(), scale.seed());
    let mut group = c.benchmark_group("table4_sfc");
    group.sample_size(20);
    for curve in [CurveKind::Hilbert, CurveKind::Z] {
        let cfg = SpbConfig {
            curve,
            ..SpbConfig::default()
        };
        let (_dir, tree) = build_spb("bench-t4", &data, dataset::color_metric(), &cfg);
        group.bench_function(format!("knn8_color_{curve:?}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                tree.flush_caches();
                let q = &data[i % 100];
                i += 1;
                tree.knn_with(q, 8, Traversal::Incremental).unwrap().0.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
