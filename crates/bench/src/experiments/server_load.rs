//! Network service load test — not a paper figure; measures the
//! `spb-server` stack end to end: wire protocol + admission control +
//! worker pool, driven by closed-loop TCP clients.
//!
//! Four parts:
//!
//! * a client-count sweep (1/2/4/8 concurrent connections, each issuing
//!   range queries back-to-back) recording p50/p99 request latency and
//!   aggregate QPS;
//! * an overload point: the same workload against a deliberately tiny
//!   admission gate (`max_inflight=1`, `max_queue=2`), demonstrating
//!   that excess load is *shed* with typed `Overloaded` responses
//!   instead of queueing without bound;
//! * a pipeline-depth sweep: one connection issuing the same workload
//!   in `send_many` windows of 1/4/16/64/256. Once the window exceeds
//!   the number of distinct queries, the dispatcher collapses the
//!   duplicate in-flight queries into shared executions and a single
//!   connection breaks through the one-core compute ceiling the
//!   closed-loop sweep saturates at (asserted ≥ 2× the 1-client QPS);
//! * a per-phase latency breakdown pulled from the server's
//!   observability registry over the wire (`ObsStats`) — including the
//!   `dispatch_batch_size` width of the 8-client point — cross-checked
//!   against the client-measured end-to-end latency, plus a
//!   histogram-record overhead probe asserting the instrumentation
//!   costs well under 2% of a request.
//!
//! Besides the printed table the run writes `BENCH_server.json` into the
//! current directory.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use spb_core::{SpbConfig, SpbTree};
use spb_metric::{dataset, MetricObject, Word};
use spb_server::{
    open_index, schema_path, serve, AdmissionConfig, Client, ClientError, ErrorCode, Request,
    Response, Schema, ServerConfig, ServerHandle,
};

use crate::experiments::common::workload;
use crate::{Scale, Table};

const CLIENTS: [usize; 4] = [1, 2, 4, 8];
const DEPTHS: [usize; 5] = [1, 4, 16, 64, 256];
const RADIUS: f64 = 2.0;

/// Request-lifecycle phases reported in the breakdown, `(json key,
/// registry name)`. `queue_wait`/`traversal`/`encode` are recorded only
/// on the server's request path; the nested phases (`latch_wait`,
/// `buffer_io`, `wal_fsync`) are process-global and also see the
/// in-process index build.
const PHASES: [(&str, &str); 6] = [
    ("queue_wait", "phase.queue_wait"),
    ("latch_wait", "phase.latch_wait"),
    ("traversal", "phase.traversal"),
    ("buffer_io", "phase.buffer_io"),
    ("wal_fsync", "phase.wal_fsync"),
    ("encode", "phase.encode"),
];

/// Instrumentation points a single range request crosses (admission
/// counters + queue-depth gauges + phase histograms + pool counters);
/// generous so the overhead bound below errs high.
const RECORDS_PER_REQUEST: f64 = 12.0;

/// One measured point of the client sweep.
struct Point {
    clients: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 * p) as usize).min(sorted.len() - 1);
    sorted[idx]
}

/// Builds a words index on disk with its `cli.schema`, ready for
/// [`open_index`].
fn build_index(dir: &std::path::Path, data: &[Word]) {
    let max_len = data.iter().map(Word::len).max().unwrap_or(1);
    let tree = SpbTree::build(
        dir,
        data,
        spb_metric::EditDistance::new(max_len),
        &SpbConfig::default(),
    )
    .expect("SPB build");
    drop(tree); // clean shutdown so the server opens a checkpointed index
    std::fs::write(schema_path(dir), Schema::Words { max_len }.to_line())
        .expect("write cli.schema");
}

fn start_server(dir: &std::path::Path, admission: AdmissionConfig) -> ServerHandle {
    let service = open_index(dir, 32, 8).expect("open index");
    let cfg = ServerConfig {
        admission,
        ..ServerConfig::default()
    };
    serve(service, "127.0.0.1:0", cfg).expect("bind server")
}

/// `n_clients` closed-loop clients splitting `total_reqs` range queries;
/// returns (elapsed seconds, sorted latencies in µs, shed responses).
fn drive(
    addr: std::net::SocketAddr,
    queries: &Arc<Vec<Vec<u8>>>,
    n_clients: usize,
    total_reqs: usize,
) -> (f64, Vec<f64>, u64) {
    let per_client = total_reqs.div_ceil(n_clients);
    let t0 = Instant::now();
    let handles: Vec<_> = (0..n_clients)
        .map(|c| {
            let queries = Arc::clone(queries);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let mut lat = Vec::with_capacity(per_client);
                let mut shed = 0u64;
                for i in 0..per_client {
                    let q = &queries[(c + i * n_clients) % queries.len()];
                    let r0 = Instant::now();
                    match client.range(q, RADIUS, 0) {
                        Ok(_) => lat.push(r0.elapsed().as_secs_f64() * 1e6),
                        Err(ClientError::Server {
                            code: ErrorCode::Overloaded,
                            ..
                        }) => shed += 1,
                        Err(e) => panic!("client {c}: {e}"),
                    }
                }
                (lat, shed)
            })
        })
        .collect();
    let mut lat = Vec::new();
    let mut shed = 0u64;
    for h in handles {
        let (l, s) = h.join().expect("client thread");
        lat.extend(l);
        shed += s;
    }
    let secs = t0.elapsed().as_secs_f64();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    (secs, lat, shed)
}

/// One point of the pipeline-depth sweep.
struct PipePoint {
    depth: usize,
    requests: usize,
    secs: f64,
    qps: f64,
}

/// One connection issuing `total_reqs` range queries (rounded up to
/// whole windows) as pipelined `send_many` windows of `depth`. The
/// pipelined gate is sized so nothing sheds — every response must be a
/// `Range` answer.
fn drive_pipelined(
    addr: std::net::SocketAddr,
    queries: &[Vec<u8>],
    depth: usize,
    total_reqs: usize,
) -> PipePoint {
    let requests = total_reqs.div_ceil(depth) * depth;
    let reqs: Vec<Request> = (0..requests)
        .map(|i| Request::Range {
            deadline_ms: 0,
            radius: RADIUS,
            obj: queries[i % queries.len()].clone(),
        })
        .collect();
    let mut client = Client::connect(addr).expect("connect");
    let t0 = Instant::now();
    for window in reqs.chunks(depth) {
        let resps = client.send_many(window).expect("pipelined send");
        for (i, resp) in resps.into_iter().enumerate() {
            assert!(
                matches!(resp, Response::Range { .. }),
                "pipelined request {i} at depth {depth}: unexpected {resp:?}"
            );
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    PipePoint {
        depth,
        requests,
        secs,
        qps: requests as f64 / secs.max(1e-9),
    }
}

/// Runs the load test at the given scale and writes `BENCH_server.json`.
pub fn run(scale: Scale) {
    let n = scale.words();
    let data = dataset::words(n, scale.seed());
    let query_words = workload(&data, &scale);
    let queries: Arc<Vec<Vec<u8>>> =
        Arc::new(query_words.iter().map(MetricObject::encoded).collect());
    let total_reqs = match scale {
        Scale::Smoke => 80,
        _ => 400,
    };

    let dir = spb_storage::TempDir::new("server-load");
    build_index(dir.path(), &data);

    // Part 1: client sweep against a comfortably-sized admission gate
    // (nothing should be shed here — panic if it is).
    let mut t = Table::new(
        &format!(
            "Server load (Words, n={n}, {} distinct queries, r={RADIUS}, {total_reqs} reqs/point)",
            queries.len()
        ),
        &["Clients", "Time(s)", "QPS", "p50(µs)", "p99(µs)"],
    );
    let server = start_server(
        dir.path(),
        AdmissionConfig {
            max_inflight: 8,
            max_queue: 64,
        },
    );
    let addr = server.addr();
    let mut points = Vec::new();
    let mut e2e_sum_us = 0.0;
    let mut e2e_count = 0usize;
    for clients in CLIENTS {
        if clients == 8 {
            // The breakdown below reads `dispatch_batch_size` for the
            // 8-client point alone; the registry is cumulative across
            // the whole sweep, so zero it as that point starts.
            spb_obs::histogram("dispatch_batch_size").reset();
        }
        let (secs, lat, shed) = drive(addr, &queries, clients, total_reqs);
        assert_eq!(shed, 0, "uncontended sweep must not shed");
        e2e_sum_us += lat.iter().sum::<f64>();
        e2e_count += lat.len();
        let point = Point {
            clients,
            qps: lat.len() as f64 / secs.max(1e-9),
            p50_us: percentile(&lat, 0.50),
            p99_us: percentile(&lat, 0.99),
        };
        t.row(vec![
            point.clients.to_string(),
            format!("{secs:.3}"),
            format!("{:.1}", point.qps),
            format!("{:.0}", point.p50_us),
            format!("{:.0}", point.p99_us),
        ]);
        points.push(point);
    }
    // Pull the observability snapshot over the wire while the sweep
    // server is still up, so the phase breakdown covers exactly the
    // sweep's requests (the overload run below would pollute it).
    let snap = Client::connect(addr)
        .expect("connect for obs")
        .obs_stats()
        .expect("obs snapshot");
    drop(server); // drains and stops before the overload server binds

    // Part 2: overload. One executing slot, two queue places, eight
    // hammering clients: the bounded queue must shed, and what is not
    // shed must still succeed.
    let server = start_server(
        dir.path(),
        AdmissionConfig {
            max_inflight: 1,
            max_queue: 2,
        },
    );
    let (secs, lat, shed) = drive(server.addr(), &queries, 8, total_reqs);
    let served = lat.len() as u64;
    let server_shed = server.shed_count();
    assert!(shed > 0, "8 clients vs 1 slot + queue 2 must shed");
    assert!(served > 0, "admitted requests must still succeed");
    assert_eq!(shed, server_shed, "client-observed and server shed counts");
    t.row(vec![
        "8 (overload)".to_owned(),
        format!("{secs:.3}"),
        format!("{:.1}", served as f64 / secs.max(1e-9)),
        format!("shed {shed}"),
        format!("of {total_reqs}"),
    ]);
    drop(server);
    t.print();

    // Part 3: pipeline-depth sweep. One connection, `send_many`
    // windows; identical deadline-free queries that are concurrently
    // queued collapse into one shared execution, so once the window
    // exceeds the distinct-query count the duplicates are answered for
    // free and the connection outruns the closed-loop compute ceiling.
    // The gate must hold a full `max_pipeline` window without shedding.
    let server = start_server(
        dir.path(),
        AdmissionConfig {
            max_inflight: 8,
            max_queue: 512,
        },
    );
    let addr = server.addr();
    let mut pipe_tbl = Table::new(
        &format!(
            "Pipelined single connection ({} distinct queries per cycle, send_many windows)",
            queries.len()
        ),
        &["Depth", "Reqs", "Time(s)", "QPS", "µs/req"],
    );
    let mut pipe_points = Vec::new();
    for depth in DEPTHS {
        let p = drive_pipelined(addr, &queries, depth, total_reqs);
        pipe_tbl.row(vec![
            p.depth.to_string(),
            p.requests.to_string(),
            format!("{:.3}", p.secs),
            format!("{:.1}", p.qps),
            format!("{:.0}", p.secs * 1e6 / p.requests as f64),
        ]);
        pipe_points.push(p);
    }
    drop(server);
    pipe_tbl.print();
    let best_pipelined_qps = pipe_points.iter().map(|p| p.qps).fold(0.0, f64::max);
    assert!(
        best_pipelined_qps >= 2.0 * points[0].qps,
        "the deepest pipeline must at least double the closed-loop 1-client QPS \
         via request collapsing ({best_pipelined_qps:.1} vs {:.1})",
        points[0].qps
    );

    // Phase breakdown table + JSON fragment; the dominant phase (by
    // total time spent) names where a request's latency actually goes.
    let e2e_mean_us = e2e_sum_us / e2e_count.max(1) as f64;
    let mut pt = Table::new(
        "Per-phase latency breakdown (sweep server, from ObsStats)",
        &[
            "Phase",
            "Count",
            "Mean(µs)",
            "p50(µs)",
            "p99(µs)",
            "Max(µs)",
        ],
    );
    let us = |ns: u64| ns as f64 / 1e3;
    let mut phases_json = String::from("{");
    let mut dominant = ("none", 0u64);
    for (i, (short, name)) in PHASES.iter().enumerate() {
        let h = snap.hist(name).unwrap_or_default();
        if h.sum > dominant.1 {
            dominant = (short, h.sum);
        }
        pt.row(vec![
            (*short).to_owned(),
            h.count.to_string(),
            format!("{:.1}", us(h.mean())),
            format!("{:.1}", us(h.p50)),
            format!("{:.1}", us(h.p99)),
            format!("{:.1}", us(h.max)),
        ]);
        if i > 0 {
            phases_json.push_str(", ");
        }
        let _ = write!(
            phases_json,
            "\"{short}\": {{\"count\": {}, \"mean_us\": {:.2}, \"p50_us\": {:.2}, \
             \"p99_us\": {:.2}, \"max_us\": {:.2}}}",
            h.count,
            us(h.mean()),
            us(h.p50),
            us(h.p99),
            us(h.max),
        );
    }
    phases_json.push('}');
    // The dispatcher's batch width over the 8-client sweep point (the
    // histogram is reset as that point starts). Raw request counts per
    // execution, not durations — printed alongside the phases because
    // batch formation is what moves the phase numbers.
    let batch = snap.hist("dispatch_batch_size").unwrap_or_default();
    pt.row(vec![
        "batch_size(reqs)".to_owned(),
        batch.count.to_string(),
        format!("{}", batch.mean()),
        batch.p50.to_string(),
        batch.p99.to_string(),
        batch.max.to_string(),
    ]);
    pt.print();
    assert!(batch.count > 0, "dispatcher recorded no batch widths");
    assert!(
        batch.p50 >= 2,
        "8 concurrent clients must coalesce into shared executions \
         (dispatch_batch_size p50 {})",
        batch.p50
    );
    // Zero-copy encode: the span covers only in-buffer serialization
    // (socket writes happen elsewhere, as partial-write resumption),
    // so its tail must sit 10x under the blocking server's 25165µs p99.
    let encode = snap.hist("phase.encode").unwrap_or_default();
    assert!(
        us(encode.p99) < 2_516.0,
        "phase.encode p99 {:.1}µs regressed past 1/10 of the blocking server",
        us(encode.p99)
    );

    // Consistency: the server-side request phases (queue wait +
    // traversal + encode; the nested phases are already inside
    // traversal) must add up to something commensurate with what the
    // clients measured end to end. The e2e number additionally carries
    // the TCP round trip and the histogram quantiles have factor-of-2
    // bucket resolution, so the bounds are generous.
    let server_phase_mean_us: f64 = ["phase.queue_wait", "phase.traversal", "phase.encode"]
        .iter()
        .filter_map(|n| snap.hist(n))
        .map(|h| us(h.mean()))
        .sum();
    assert!(
        server_phase_mean_us > 0.0,
        "request phases recorded nothing"
    );
    assert!(
        server_phase_mean_us > 0.02 * e2e_mean_us && server_phase_mean_us < 2.5 * e2e_mean_us,
        "phase sum {server_phase_mean_us:.1}µs inconsistent with e2e mean {e2e_mean_us:.1}µs"
    );

    // Overhead probe: one histogram record is three relaxed atomic
    // RMWs; a request crosses roughly a dozen instrumentation points.
    // The always-on instrumentation must stay below 2% of even the
    // fastest (1-client) median request.
    let probe = spb_obs::histogram("bench.overhead_probe");
    const PROBE_RECORDS: u64 = 1_000_000;
    let t0 = Instant::now();
    for i in 0..PROBE_RECORDS {
        probe.record(i & 1023);
    }
    let ns_per_record = t0.elapsed().as_nanos() as f64 / PROBE_RECORDS as f64;
    let per_request_ns = ns_per_record * RECORDS_PER_REQUEST;
    let overhead_frac = per_request_ns / (points[0].p50_us * 1e3);
    println!(
        "[server] obs overhead: {ns_per_record:.1} ns/record, \
         ~{per_request_ns:.0} ns/request = {:.3}% of 1-client p50",
        overhead_frac * 100.0
    );
    assert!(
        overhead_frac < 0.02,
        "instrumentation overhead {:.2}% of 1-client p50 (must be <2%)",
        overhead_frac * 100.0
    );

    let mut sweep_json = String::from("[");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            sweep_json.push_str(", ");
        }
        let _ = write!(
            sweep_json,
            "{{\"clients\": {}, \"qps\": {:.2}, \"p50_us\": {:.1}, \"p99_us\": {:.1}}}",
            p.clients, p.qps, p.p50_us, p.p99_us
        );
    }
    sweep_json.push(']');
    let mut pipe_json = String::from("[");
    for (i, p) in pipe_points.iter().enumerate() {
        if i > 0 {
            pipe_json.push_str(", ");
        }
        let _ = write!(
            pipe_json,
            "{{\"depth\": {}, \"requests\": {}, \"qps\": {:.2}}}",
            p.depth, p.requests, p.qps
        );
    }
    pipe_json.push(']');
    let batch_json = format!(
        "{{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}",
        batch.count,
        batch.mean(),
        batch.p50,
        batch.p90,
        batch.p99,
        batch.max
    );
    let json = format!(
        "{{\n  \"experiment\": \"server_load\",\n  \"scale\": \"{scale:?}\",\n  \
         \"dataset\": {{\"name\": \"words\", \"n\": {n}, \"queries\": {}, \"radius\": {RADIUS}}},\n  \
         \"requests_per_point\": {total_reqs},\n  \
         \"sweep\": {sweep_json},\n  \
         \"pipeline\": {pipe_json},\n  \
         \"dispatch_batch_size_8_clients\": {batch_json},\n  \
         \"phases\": {phases_json},\n  \
         \"dominant_phase\": \"{}\",\n  \
         \"e2e_mean_us\": {e2e_mean_us:.2},\n  \
         \"server_phase_mean_us\": {server_phase_mean_us:.2},\n  \
         \"obs_overhead\": {{\"ns_per_record\": {ns_per_record:.1}, \
         \"per_request_ns\": {per_request_ns:.1}, \"frac_of_p50\": {overhead_frac:.5}}},\n  \
         \"overload\": {{\"clients\": 8, \"max_inflight\": 1, \"max_queue\": 2, \
         \"requests\": {total_reqs}, \"served\": {served}, \"shed\": {shed}}}\n}}\n",
        queries.len(),
        dominant.0,
    );
    std::fs::write("BENCH_server.json", &json).expect("write BENCH_server.json");
    eprintln!("[server] wrote BENCH_server.json");
}
