//! Property-based tests for the `spb-accel` subsystem: learned leaf
//! positioning is an *optimisation*, never a semantic change. On
//! arbitrary small datasets — across curves, cache shardings, and
//! post-build insertions that stale the model — every learned-path
//! query must return byte-identical results (ids, objects, distances)
//! at identical distance-computation cost to classic B⁺-tree descent,
//! and the approximate modes must keep perfect precision.

use proptest::prelude::*;
use spb_core::{AccelPolicy, Positioning, SpbConfig, SpbTree};
use spb_metric::{Distance, EditDistance, Word};
use spb_sfc::CurveKind;
use spb_storage::TempDir;

fn word_set() -> impl Strategy<Value = Vec<Word>> {
    proptest::collection::vec("[a-e]{1,8}", 2..60)
        .prop_map(|ws| ws.into_iter().map(Word::new).collect())
}

/// Classic vs learned positioning on one tree: both range and kNN must
/// agree exactly, including the compdists count (positioning changes
/// *where* the traversal starts, never which objects it inspects).
fn assert_identical(
    tree: &SpbTree<Word, EditDistance>,
    q: &Word,
    r: f64,
    k: usize,
) -> Result<(), String> {
    let (classic, cs) = tree.range_positioned(q, r, Positioning::Classic).unwrap();
    let (learned, ls) = tree.range_positioned(q, r, Positioning::Learned).unwrap();
    prop_assert_eq!(&classic, &learned, "range results diverged");
    prop_assert_eq!(cs.compdists, ls.compdists, "range compdists diverged");

    let (classic, cs) = tree.knn_positioned(q, k, Positioning::Classic).unwrap();
    let (learned, ls) = tree.knn_positioned(q, k, Positioning::Learned).unwrap();
    prop_assert_eq!(&classic, &learned, "knn results diverged");
    prop_assert_eq!(cs.compdists, ls.compdists, "knn compdists diverged");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Learned positioning is byte-identical to classic descent on a
    /// fresh model, stays identical after insertions stale the model
    /// (silent fallback), and again after an explicit rebuild — across
    /// both curves and several cache shardings.
    #[test]
    fn learned_positioning_never_changes_results(
        data in word_set(),
        extra in proptest::collection::vec("[a-e]{1,8}", 0..8),
        qi in 0usize..100,
        r in 0.0f64..5.0,
        k in 1usize..8,
        hilbert in any::<bool>(),
        shards in 1usize..4,
    ) {
        let dir = TempDir::new("prop-accel");
        let cfg = SpbConfig {
            curve: if hilbert { CurveKind::Hilbert } else { CurveKind::Z },
            cache_shards: shards,
            accel: AccelPolicy::Learned,
            ..SpbConfig::default()
        };
        let tree = SpbTree::build(dir.path(), &data, EditDistance::default(), &cfg).unwrap();
        prop_assert!(tree.accel_model_fresh(), "build must install a fresh model");
        let q = data[qi % data.len()].clone();

        assert_identical(&tree, &q, r, k)?;

        // Insertions advance the tree epoch: the model goes stale and
        // learned requests must silently fall back to classic descent.
        for w in &extra {
            tree.insert(&Word::new(w)).unwrap();
        }
        if !extra.is_empty() {
            prop_assert!(!tree.accel_model_fresh(), "insertions must stale the model");
        }
        assert_identical(&tree, &q, r, k)?;

        // An explicit rebuild restores learned positioning; results are
        // still identical and the model covers the inserted objects.
        tree.rebuild_accel().unwrap();
        prop_assert!(tree.accel_model_fresh(), "rebuild must refresh the model");
        assert_identical(&tree, &q, r, k)?;
        for w in &extra {
            assert_identical(&tree, &Word::new(w), r, k)?;
        }
    }

    /// Approximate range keeps perfect precision: every hit is a true
    /// hit (within `r` by brute force), the hit set is a subset of the
    /// exact answer, and `contraction = 1` degenerates to exact.
    #[test]
    fn range_approx_keeps_perfect_precision(
        data in word_set(),
        qi in 0usize..100,
        r in 0.0f64..5.0,
        contraction in 0.25f64..=1.0,
    ) {
        let dir = TempDir::new("prop-accel-rq");
        let metric = EditDistance::default();
        let cfg = SpbConfig {
            accel: AccelPolicy::Learned,
            ..SpbConfig::default()
        };
        let tree = SpbTree::build(dir.path(), &data, metric, &cfg).unwrap();
        let q = &data[qi % data.len()];

        let (exact, _) = tree.range(q, r).unwrap();
        let (approx, stats) = tree.range_approx_measured(q, r, contraction).unwrap();
        let exact_ids: Vec<u32> = exact.iter().map(|&(id, _)| id).collect();
        for (id, o) in &approx {
            prop_assert!(metric.distance(q, o) <= r, "false positive at id {id}");
            prop_assert!(exact_ids.contains(id), "approx hit {id} not in exact answer");
        }
        let recall = stats.recall.unwrap();
        prop_assert!((0.0..=1.0).contains(&recall));
        if contraction == 1.0 {
            let mut a: Vec<u32> = approx.iter().map(|&(id, _)| id).collect();
            let mut e = exact_ids;
            a.sort_unstable();
            e.sort_unstable();
            prop_assert_eq!(a, e, "contraction=1 must be exact");
            prop_assert_eq!(recall, 1.0);
        }
    }

    /// α-approximate kNN returns `k` real objects whose distances are
    /// within `α` of the true k-th neighbour distance; `α = 1` is exact.
    #[test]
    fn knn_approx_is_alpha_bounded(
        data in word_set(),
        qi in 0usize..100,
        k in 1usize..8,
        alpha in 1.0f64..=3.0,
    ) {
        let dir = TempDir::new("prop-accel-knn");
        let metric = EditDistance::default();
        let tree = SpbTree::build(dir.path(), &data, metric, &SpbConfig::default()).unwrap();
        let q = &data[qi % data.len()];

        let mut true_dists: Vec<f64> = data.iter().map(|o| metric.distance(q, o)).collect();
        true_dists.sort_by(f64::total_cmp);
        let want = k.min(data.len());
        let dk = true_dists[want - 1];

        let (nn, _) = tree.knn_approx(q, k, alpha).unwrap();
        prop_assert_eq!(nn.len(), want);
        for &(_, ref o, d) in &nn {
            prop_assert!((metric.distance(q, o) - d).abs() < 1e-9, "reported distance wrong");
            prop_assert!(d <= alpha * dk + 1e-9, "distance {d} exceeds alpha bound {}", alpha * dk);
        }
        if alpha == 1.0 {
            for (got, want) in nn.iter().map(|&(_, _, d)| d).zip(true_dists) {
                prop_assert!((got - want).abs() < 1e-9, "alpha=1 must be exact");
            }
        }
    }
}
