//! SJA — the Similarity Join Algorithm (Algorithm 3).
//!
//! `SJ(Q, O, ε)` finds all pairs within distance ε (Definition 4). SJA
//! performs a **single merge pass** over the leaf levels of two SPB-trees
//! built on the *same pivot table* and the **Z-order curve**: entries are
//! consumed in ascending SFC order, and each visited object is verified
//! against the opposite side's recently-visited list.
//!
//! Pruning:
//!
//! * **Lemma 6** (Z-order monotonicity): a list entry `o` is evicted once
//!   `maxRR(o, ε) < SFC(φ(q))` — no later entry can pair with it — and a
//!   candidate is only examined when `SFC(φ(o)) ≥ minRR(q, ε)`;
//! * **Lemma 5**: the pair is skipped without a distance computation unless
//!   `φ(o) ∈ RR(q, ε)` (checked per grid dimension);
//! * only survivors pay a distance computation.
//!
//! Lemma 7 guarantees the merge produces every qualifying pair exactly
//! once.

use std::io;
use std::time::Instant;

use spb_bptree::{LeafNode, Node};
use spb_metric::{Distance, MetricObject};
use spb_sfc::Sfc;

use crate::exec;
use crate::stats::StatsCollector;
use crate::tree::{QueryStats, SpbTree};

/// One result pair of a similarity join.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinPair {
    /// Object id in the left (Q) tree.
    pub q_id: u32,
    /// Object id in the right (O) tree.
    pub o_id: u32,
    /// Their metric distance (`≤ ε`).
    pub distance: f64,
}

/// Cursor over a tree's leaf chain, yielding `(key, value)` in SFC order.
struct LeafCursor<'a, O: MetricObject, D: Distance<O>> {
    tree: &'a SpbTree<O, D>,
    leaf: Option<LeafNode>,
    idx: usize,
}

impl<'a, O: MetricObject, D: Distance<O>> LeafCursor<'a, O, D> {
    fn new(tree: &'a SpbTree<O, D>, col: &mut StatsCollector) -> io::Result<Self> {
        let leaf = match tree.btree.first_leaf() {
            Some(id) => match tree.read_node_traced(id, col)? {
                Node::Leaf(l) => Some(l),
                _ => unreachable!("leaf chain contains only leaves"),
            },
            None => None,
        };
        Ok(LeafCursor { tree, leaf, idx: 0 })
    }

    fn current(&self) -> Option<(u128, u64)> {
        let l = self.leaf.as_ref()?;
        Some((l.keys[self.idx], l.values[self.idx]))
    }

    fn advance(&mut self, col: &mut StatsCollector) -> io::Result<()> {
        let Some(l) = self.leaf.as_ref() else {
            return Ok(());
        };
        self.idx += 1;
        if self.idx >= l.keys.len() {
            self.idx = 0;
            self.leaf = match l.next {
                Some(id) => match self.tree.read_node_traced(id, col)? {
                    Node::Leaf(nl) => Some(nl),
                    _ => unreachable!("leaf chain contains only leaves"),
                },
                None => None,
            };
        }
        Ok(())
    }
}

/// An entry of the lists `L_Q`/`L_O`: a visited object plus the
/// precomputed `maxRR` bound used for Lemma-6 eviction.
struct ListEntry<O> {
    sfc: u128,
    cell: Vec<u32>,
    max_rr: u128,
    id: u32,
    obj: O,
}

/// `SJ(Q, O, ε)` over two SPB-trees (Algorithm 3).
///
/// Both trees must be built on the **Z-order curve** (use
/// [`SpbConfig::for_join`](crate::SpbConfig::for_join)) and share one pivot
/// table: build the first tree normally and the second via
/// [`SpbTree::build_with_pivots`] with the first tree's pivots.
///
/// Returns the result pairs and the combined cost metrics of both trees.
///
/// # Panics
/// Panics if the trees use different curves/pivot tables or a non-Z curve.
pub fn similarity_join<O: MetricObject, D: Distance<O>>(
    spb_q: &SpbTree<O, D>,
    spb_o: &SpbTree<O, D>,
    eps: f64,
) -> io::Result<(Vec<JoinPair>, QueryStats)> {
    assert_eq!(
        spb_q.curve.kind(),
        spb_sfc::CurveKind::Z,
        "SJA relies on Z-order monotonicity (Lemma 6); build join trees with SpbConfig::for_join()"
    );
    assert_eq!(
        spb_q.curve, spb_o.curve,
        "join trees must share one curve geometry"
    );
    assert!(
        spb_q.table.pivots() == spb_o.table.pivots() && spb_q.table.delta() == spb_o.table.delta(),
        "join trees must share one pivot table"
    );

    let _guard_q = spb_q.latch_shared();
    let _guard_o = spb_o.latch_shared();
    let start = spb_obs::clock::now();
    // One collector per tree so each side's B⁺-tree/RAF accesses meet the
    // right accounting cache; distances are counted on the Q side.
    let mut col_q = spb_q.collector();
    let mut col_o = spb_o.collector();
    let mut result = Vec::new();

    if eps >= 0.0 {
        let table = &spb_q.table;
        let curve = &spb_q.curve;
        let k_cells = table.cell_radius(eps);
        let max_coord = table.max_coord();

        let mut cur_q = LeafCursor::new(spb_q, &mut col_q)?;
        let mut cur_o = LeafCursor::new(spb_o, &mut col_o)?;
        let mut list_q: Vec<ListEntry<O>> = Vec::new();
        let mut list_o: Vec<ListEntry<O>> = Vec::new();

        // Verify `cur` (just visited, from one tree) against the other
        // tree's list; `cur_is_q` fixes the (q, o) orientation of emitted
        // pairs.
        let verify = |cur: &ListEntry<O>,
                      list: &mut Vec<ListEntry<O>>,
                      cur_is_q: bool,
                      col: &mut StatsCollector,
                      result: &mut Vec<JoinPair>| {
            let min_rr = zorder_corner(curve, &cur.cell, false, k_cells, max_coord);
            let mut i = list.len();
            while i > 0 {
                i -= 1;
                // Lemma 6 eviction: no future entry (SFC ≥ cur.sfc) can
                // still pair with this list entry.
                if list[i].max_rr < cur.sfc {
                    list.remove(i);
                    continue;
                }
                // Lemma 6 window check.
                if list[i].sfc >= min_rr {
                    // Lemma 5: per-dimension pivot-space filter.
                    let in_rr = list[i]
                        .cell
                        .iter()
                        .zip(&cur.cell)
                        .all(|(&a, &b)| a.abs_diff(b) <= k_cells);
                    if in_rr {
                        let d = spb_q.dist_traced(col, &cur.obj, &list[i].obj);
                        if d <= eps {
                            let (q_id, o_id) = if cur_is_q {
                                (cur.id, list[i].id)
                            } else {
                                (list[i].id, cur.id)
                            };
                            result.push(JoinPair {
                                q_id,
                                o_id,
                                distance: d,
                            });
                        }
                    }
                }
            }
        };

        // The merge loop (Algorithm 3 lines 3–11).
        while cur_q.current().is_some() || cur_o.current().is_some() {
            let take_q = match (cur_q.current(), cur_o.current()) {
                (Some((kq, _)), Some((ko, _))) => kq <= ko,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => unreachable!("loop condition"),
            };
            if take_q {
                let (key, off) = cur_q.current().expect("checked");
                let (id, obj) = spb_q.fetch_traced(off, &mut col_q)?;
                let cell = curve.decode(key);
                let entry = ListEntry {
                    sfc: key,
                    max_rr: zorder_corner(curve, &cell, true, k_cells, max_coord),
                    cell,
                    id,
                    obj,
                };
                verify(&entry, &mut list_o, true, &mut col_q, &mut result);
                list_q.push(entry);
                cur_q.advance(&mut col_q)?;
            } else {
                let (key, off) = cur_o.current().expect("checked");
                let (id, obj) = spb_o.fetch_traced(off, &mut col_o)?;
                let cell = curve.decode(key);
                let entry = ListEntry {
                    sfc: key,
                    max_rr: zorder_corner(curve, &cell, true, k_cells, max_coord),
                    cell,
                    id,
                    obj,
                };
                verify(&entry, &mut list_q, false, &mut col_q, &mut result);
                list_o.push(entry);
                cur_o.advance(&mut col_o)?;
            }
        }
    }

    Ok((result, combine_join_stats(col_q, col_o, start)))
}

/// The Z-order key of `cell` shifted by ±`k_cells` per dimension and
/// clamped to the grid — `minRR`/`maxRR` of Lemma 6. By Z-order
/// monotonicity, every cell of `RR(cell, ε)` has its SFC value inside
/// `[minRR, maxRR]`.
fn zorder_corner(curve: &Sfc, cell: &[u32], up: bool, k_cells: u32, max_coord: u32) -> u128 {
    let shifted: Vec<u32> = cell
        .iter()
        .map(|&c| {
            if up {
                c.saturating_add(k_cells).min(max_coord)
            } else {
                c.saturating_sub(k_cells)
            }
        })
        .collect();
    curve.encode(&shifted)
}

/// Sums both sides' collectors into one join-level [`QueryStats`].
fn combine_join_stats(col_q: StatsCollector, col_o: StatsCollector, start: Instant) -> QueryStats {
    let sq = col_q.finish();
    let so = col_o.finish();
    QueryStats {
        compdists: sq.compdists + so.compdists,
        page_accesses: sq.page_accesses + so.page_accesses,
        btree_pa: sq.btree_pa + so.btree_pa,
        raf_pa: sq.raf_pa + so.raf_pa,
        fsyncs: 0,
        duration: start.elapsed(),
        recall: None,
    }
}

/// Partition-parallel SJA: splits `Q`'s leaf chain into `threads`
/// contiguous Z-order partitions and joins each against `O` on a worker
/// pool ([`exec::parallel_map`]).
///
/// Each partition processes its Q entries independently: a Q entry's
/// candidates are exactly the O entries with SFC values inside the
/// entry's `[minRR, maxRR]` window (Lemma 6 / Z-order monotonicity),
/// found with a B⁺-tree range probe, then filtered per dimension
/// (Lemma 5) before any distance computation. Every qualifying pair is
/// found by exactly one partition — the one owning its Q entry — so no
/// deduplication pass is needed (Lemma 7's guarantee, by construction).
///
/// Results match [`similarity_join`] as a set; pair order differs. *PA*
/// is accounted per partition (each partition simulates its own cold
/// protocol cache) and summed.
pub fn similarity_join_parallel<O: MetricObject, D: Distance<O>>(
    spb_q: &SpbTree<O, D>,
    spb_o: &SpbTree<O, D>,
    eps: f64,
    threads: usize,
) -> io::Result<(Vec<JoinPair>, QueryStats)> {
    assert_eq!(
        spb_q.curve.kind(),
        spb_sfc::CurveKind::Z,
        "SJA relies on Z-order monotonicity (Lemma 6); build join trees with SpbConfig::for_join()"
    );
    assert_eq!(
        spb_q.curve, spb_o.curve,
        "join trees must share one curve geometry"
    );
    assert!(
        spb_q.table.pivots() == spb_o.table.pivots() && spb_q.table.delta() == spb_o.table.delta(),
        "join trees must share one pivot table"
    );

    let _guard_q = spb_q.latch_shared();
    let _guard_o = spb_o.latch_shared();
    let start = spb_obs::clock::now();
    let mut setup = spb_q.collector();

    // Walk Q's leaf chain once to learn the partition boundaries.
    let mut leaves: Vec<spb_storage::PageId> = Vec::new();
    if eps >= 0.0 {
        let mut next = spb_q.btree.first_leaf();
        while let Some(id) = next {
            leaves.push(id);
            next = match spb_q.read_node_traced(id, &mut setup)? {
                Node::Leaf(l) => l.next,
                _ => unreachable!("leaf chain contains only leaves"),
            };
        }
    }
    let workers = threads.max(1).min(leaves.len().max(1));
    let chunks: Vec<&[spb_storage::PageId]> = leaves
        .chunks(leaves.len().div_ceil(workers).max(1))
        .collect();

    let table = &spb_q.table;
    let curve = &spb_q.curve;
    let k_cells = table.cell_radius(eps.max(0.0));
    let max_coord = table.max_coord();

    let per_partition: io::Result<Vec<(Vec<JoinPair>, QueryStats)>> =
        exec::parallel_map(threads, &chunks, |_, chunk| {
            let mut col_q = spb_q.collector();
            let mut col_o = spb_o.collector();
            let mut pairs = Vec::new();
            for &leaf_id in *chunk {
                let Node::Leaf(leaf) = spb_q.read_node_traced(leaf_id, &mut col_q)? else {
                    unreachable!("leaf chain contains only leaves");
                };
                for (&key, &off) in leaf.keys.iter().zip(&leaf.values) {
                    let cell = curve.decode(key);
                    let lo = zorder_corner(curve, &cell, false, k_cells, max_coord);
                    let hi = zorder_corner(curve, &cell, true, k_cells, max_coord);
                    let cands = spb_o
                        .btree
                        .scan_range_traced(lo, hi, &mut |p| col_o.btree_page(p.0))?;
                    let mut q_obj: Option<(u32, O)> = None;
                    for (okey, ooff) in cands {
                        // Lemma 5: per-dimension pivot-space filter.
                        let ocell = curve.decode(okey);
                        if !ocell
                            .iter()
                            .zip(&cell)
                            .all(|(&a, &b)| a.abs_diff(b) <= k_cells)
                        {
                            continue;
                        }
                        if q_obj.is_none() {
                            q_obj = Some(spb_q.fetch_traced(off, &mut col_q)?);
                        }
                        let (q_id, q_o) = q_obj.as_ref().expect("fetched above");
                        let (o_id, o_o) = spb_o.fetch_traced(ooff, &mut col_o)?;
                        let d = spb_q.dist_traced(&mut col_q, q_o, &o_o);
                        if d <= eps {
                            pairs.push(JoinPair {
                                q_id: *q_id,
                                o_id,
                                distance: d,
                            });
                        }
                    }
                }
            }
            Ok((pairs, combine_join_stats(col_q, col_o, start)))
        })
        .into_iter()
        .collect();

    let mut result = Vec::new();
    let mut stats = setup.finish();
    for (pairs, s) in per_partition? {
        result.extend(pairs);
        stats.compdists += s.compdists;
        stats.page_accesses += s.page_accesses;
        stats.btree_pa += s.btree_pa;
        stats.raf_pa += s.raf_pa;
    }
    stats.duration = start.elapsed();
    Ok((result, stats))
}

impl<O: MetricObject, D: Distance<O>> SpbTree<O, D> {
    /// Convenience method form of [`similarity_join`]: `self` is `Q`.
    pub fn join(&self, other: &SpbTree<O, D>, eps: f64) -> io::Result<(Vec<JoinPair>, QueryStats)> {
        similarity_join(self, other, eps)
    }

    /// Convenience method form of [`similarity_join_parallel`]: `self` is
    /// `Q`.
    pub fn join_parallel(
        &self,
        other: &SpbTree<O, D>,
        eps: f64,
        threads: usize,
    ) -> io::Result<(Vec<JoinPair>, QueryStats)> {
        similarity_join_parallel(self, other, eps, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpbConfig;
    use spb_metric::{dataset, Distance, MetricObject, Word};
    use spb_storage::TempDir;

    fn build_pair<O: MetricObject, D: Distance<O> + Clone>(
        q_data: &[O],
        o_data: &[O],
        metric: D,
    ) -> (TempDir, TempDir, SpbTree<O, D>, SpbTree<O, D>) {
        let dq = TempDir::new("sja-q");
        let do_ = TempDir::new("sja-o");
        let cfg = SpbConfig::for_join();
        let spb_o = SpbTree::build(do_.path(), o_data, metric.clone(), &cfg).unwrap();
        let spb_q = SpbTree::build_with_pivots(
            dq.path(),
            q_data,
            metric,
            spb_o.table().pivots().to_vec(),
            &cfg,
            0,
        )
        .unwrap();
        (dq, do_, spb_q, spb_o)
    }

    fn brute_join<O: MetricObject, D: Distance<O>>(
        q: &[O],
        o: &[O],
        metric: &D,
        eps: f64,
    ) -> Vec<(u32, u32)> {
        let mut pairs = Vec::new();
        for (i, a) in q.iter().enumerate() {
            for (j, b) in o.iter().enumerate() {
                if metric.distance(a, b) <= eps {
                    pairs.push((i as u32, j as u32));
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    fn check<O: MetricObject, D: Distance<O> + Clone>(
        q_data: Vec<O>,
        o_data: Vec<O>,
        metric: D,
        epsilons: &[f64],
    ) {
        let (_dq, _do, spb_q, spb_o) = build_pair(&q_data, &o_data, metric.clone());
        for &eps in epsilons {
            spb_q.flush_caches();
            spb_o.flush_caches();
            let (pairs, stats) = similarity_join(&spb_q, &spb_o, eps).unwrap();
            let mut got: Vec<(u32, u32)> = pairs.iter().map(|p| (p.q_id, p.o_id)).collect();
            got.sort_unstable();
            let dup_check = got.windows(2).all(|w| w[0] != w[1]);
            assert!(dup_check, "Lemma 7: no duplicate pairs (eps={eps})");
            let want = brute_join(&q_data, &o_data, &metric, eps);
            assert_eq!(got, want, "eps={eps}");
            // Distances reported are correct.
            for p in &pairs {
                let d = metric.distance(&q_data[p.q_id as usize], &o_data[p.o_id as usize]);
                assert!((d - p.distance).abs() < 1e-12);
            }
            assert!(stats.page_accesses > 0);
        }
    }

    #[test]
    fn sja_matches_bruteforce_words() {
        check(
            dataset::words(250, 41),
            dataset::words(300, 42),
            dataset::words_metric(),
            &[0.0, 1.0, 2.0],
        );
    }

    #[test]
    fn sja_matches_bruteforce_color() {
        check(
            dataset::color(250, 43),
            dataset::color(250, 44),
            dataset::color_metric(),
            &[0.02, 0.08, 0.2],
        );
    }

    #[test]
    fn sja_matches_bruteforce_signature() {
        check(
            dataset::signature(200, 45),
            dataset::signature(200, 46),
            dataset::signature_metric(),
            &[4.0, 10.0],
        );
    }

    #[test]
    fn paper_word_example() {
        // Section 5.1's running example.
        let q: Vec<Word> = ["defoliate", "defoliates", "defoliation"]
            .iter()
            .map(|s| Word::new(*s))
            .collect();
        let o: Vec<Word> = ["citrate", "defoliated", "defoliating"]
            .iter()
            .map(|s| Word::new(*s))
            .collect();
        let (_dq, _do, spb_q, spb_o) = build_pair(&q, &o, dataset::words_metric());
        let (pairs, _) = similarity_join(&spb_q, &spb_o, 1.0).unwrap();
        let mut got: Vec<(u32, u32)> = pairs.iter().map(|p| (p.q_id, p.o_id)).collect();
        got.sort_unstable();
        // The paper's prose lists ⟨defoliate, defoliated⟩; the pair
        // ⟨defoliates, defoliated⟩ is also at edit distance 1 (final
        // s → d) and a correct join must report it too.
        assert_eq!(got, vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn empty_sides_yield_empty_join() {
        let q = dataset::words(50, 47);
        let o = vec![Word::new("isolated")];
        let (_dq, _do, spb_q, spb_o) = build_pair(&q, &o, dataset::words_metric());
        let (pairs, _) = similarity_join(&spb_q, &spb_o, 0.0).unwrap();
        let brute = brute_join(&q, &o, &dataset::words_metric(), 0.0);
        assert_eq!(pairs.len(), brute.len());
    }

    #[test]
    #[should_panic(expected = "Z-order")]
    fn hilbert_trees_are_rejected() {
        let data = dataset::words(50, 48);
        let dir1 = TempDir::new("sja-bad1");
        let dir2 = TempDir::new("sja-bad2");
        let cfg = SpbConfig::default(); // Hilbert
        let a = SpbTree::build(dir1.path(), &data, dataset::words_metric(), &cfg).unwrap();
        let b = SpbTree::build_with_pivots(
            dir2.path(),
            &data,
            dataset::words_metric(),
            a.table().pivots().to_vec(),
            &cfg,
            0,
        )
        .unwrap();
        let _ = similarity_join(&a, &b, 1.0);
    }

    #[test]
    fn parallel_join_matches_sequential_pairs() {
        let q_data = dataset::words(250, 51);
        let o_data = dataset::words(300, 52);
        let metric = dataset::words_metric();
        let (_dq, _do, spb_q, spb_o) = build_pair(&q_data, &o_data, metric);
        for eps in [0.0, 1.0, 2.0] {
            let (seq, _) = similarity_join(&spb_q, &spb_o, eps).unwrap();
            let mut want: Vec<(u32, u32)> = seq.iter().map(|p| (p.q_id, p.o_id)).collect();
            want.sort_unstable();
            assert_eq!(
                want,
                brute_join(&q_data, &o_data, &metric, eps),
                "eps={eps}"
            );
            for threads in [1, 2, 4] {
                let (par, stats) = similarity_join_parallel(&spb_q, &spb_o, eps, threads).unwrap();
                let mut got: Vec<(u32, u32)> = par.iter().map(|p| (p.q_id, p.o_id)).collect();
                got.sort_unstable();
                assert!(
                    got.windows(2).all(|w| w[0] != w[1]),
                    "no duplicate pairs (eps={eps}, {threads} threads)"
                );
                assert_eq!(got, want, "eps={eps}, {threads} threads");
                for p in &par {
                    let d = metric.distance(&q_data[p.q_id as usize], &o_data[p.o_id as usize]);
                    assert!((d - p.distance).abs() < 1e-12);
                }
                if eps > 0.0 {
                    assert!(stats.page_accesses > 0);
                }
            }
        }
    }

    #[test]
    fn parallel_join_stats_are_thread_count_invariant() {
        // PA is accounted per partition against a simulated cold cache, so
        // only the partitioning (fixed by the leaf chain), never the thread
        // count, determines the numbers.
        let q_data = dataset::color(200, 53);
        let o_data = dataset::color(200, 54);
        let (_dq, _do, spb_q, spb_o) = build_pair(&q_data, &o_data, dataset::color_metric());
        let (_, s2) = similarity_join_parallel(&spb_q, &spb_o, 0.08, 2).unwrap();
        let (_, s2b) = similarity_join_parallel(&spb_q, &spb_o, 0.08, 2).unwrap();
        assert_eq!(s2.compdists, s2b.compdists);
        assert_eq!(s2.page_accesses, s2b.page_accesses);
        assert_eq!(s2.btree_pa, s2b.btree_pa);
        assert_eq!(s2.raf_pa, s2b.raf_pa);
    }

    #[test]
    fn join_prunes_distance_computations() {
        let q = dataset::color(500, 49);
        let o = dataset::color(500, 50);
        let (_dq, _do, spb_q, spb_o) = build_pair(&q, &o, dataset::color_metric());
        let (_, stats) = similarity_join(&spb_q, &spb_o, 0.05).unwrap();
        assert!(
            stats.compdists < 250_000 / 4,
            "expected pruning well below |Q|·|O|, got {}",
            stats.compdists
        );
    }
}
