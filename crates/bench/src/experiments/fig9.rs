//! Fig. 9 — efficiency of pivot selection methods vs `|P|`:
//! HFI (the paper's), HF, Spacing and PCA, for |P| ∈ {1, 3, 5, 7, 9},
//! measured by kNN (k = 8) compdists / PA / time.
//!
//! Paper's shape: HFI dominates; compdists falls monotonically with more
//! pivots, while PA and time bottom out near the intrinsic
//! dimensionality (≈ 3–6) and then flatten or rise.

use spb_core::{SpbConfig, Traversal};
use spb_metric::{dataset, Distance, MetricObject};
use spb_pivots::PivotMethod;

use crate::experiments::common::{build_spb, knn_avg, workload};
use crate::runner::fmt_num;
use crate::{Scale, Table};

const METHODS: [PivotMethod; 4] = [
    PivotMethod::Hfi,
    PivotMethod::Hf,
    PivotMethod::Spacing,
    PivotMethod::Pca,
];

fn sweep_for<O: MetricObject, D: Distance<O> + Clone>(
    name: &str,
    data: &[O],
    metric: D,
    scale: Scale,
) {
    let queries = workload(data, &scale);
    let mut t = Table::new(
        &format!("Fig. 9 ({name}): pivot selection methods vs |P| (kNN, k=8)"),
        &["|P|", "Method", "compdists", "PA", "Time(s)"],
    );
    for num_pivots in [1usize, 3, 5, 7, 9] {
        for method in METHODS {
            let cfg = SpbConfig {
                num_pivots,
                pivot_method: method,
                ..SpbConfig::default()
            };
            let (_dir, tree) = build_spb(&format!("f9-{name}"), data, metric.clone(), &cfg);
            let avg = knn_avg(&tree, queries, 8, Traversal::Incremental);
            t.row(vec![
                num_pivots.to_string(),
                method.name().to_owned(),
                fmt_num(avg.compdists),
                fmt_num(avg.pa),
                format!("{:.4}", avg.time_s),
            ]);
        }
    }
    t.print();
}

/// Reproduces Fig. 9 at the given scale.
pub fn run(scale: Scale) {
    let seed = scale.seed();
    sweep_for(
        "Color",
        &dataset::color(scale.color(), seed),
        dataset::color_metric(),
        scale,
    );
    sweep_for(
        "Words",
        &dataset::words(scale.words(), seed),
        dataset::words_metric(),
        scale,
    );
    sweep_for(
        "Signature",
        &dataset::signature(scale.signature(), seed),
        dataset::signature_metric(),
        scale,
    );
}
