//! Known-bad fixture: malformed suppression markers.

// spb-lint: allow(no-such-rule) — the slug names no registered rule
pub fn misspelled() {}

// spb-lint: allow(no-panic)
pub fn unjustified() {}
