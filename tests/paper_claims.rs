//! Directional tests of the paper's headline claims, at integration
//! scale: the *shape* of the evaluation (who wins, and roughly how) must
//! hold in this reproduction.

use spb::metric::{dataset, Distance};
use spb::storage::TempDir;
use spb::{similarity_join, SpbConfig, SpbTree, Traversal};
use spb_mams::{
    quickjoin_rs, EdIndex, EdIndexParams, MIndex, MIndexParams, MTree, MTreeParams, OmniParams,
    OmniRTree, QuickJoinParams,
};

/// "The SPB-tree has much lower construction cost [and] smaller storage
/// size" (abstract; Table 6).
#[test]
fn spb_has_smallest_construction_and_storage() {
    let data = dataset::color(4_000, 901);
    let metric = dataset::color_metric();
    let (d1, d2, d3, d4) = (
        TempDir::new("pc-mtree"),
        TempDir::new("pc-omni"),
        TempDir::new("pc-mindex"),
        TempDir::new("pc-spb"),
    );
    let mtree = MTree::build(d1.path(), &data, metric, &MTreeParams::default()).unwrap();
    let omni = OmniRTree::build(d2.path(), &data, metric, &OmniParams::default()).unwrap();
    let mindex = MIndex::build(d3.path(), &data, metric, &MIndexParams::default()).unwrap();
    let spb = SpbTree::build(d4.path(), &data, metric, &SpbConfig::default()).unwrap();

    let spb_b = spb.build_stats();
    // Construction distance computations: SPB maps each object |P| = 5
    // times; every competitor computes more.
    assert_eq!(spb_b.compdists, 5 * 4_000);
    assert!(mtree.build_stats().compdists > spb_b.compdists);
    assert!(omni.build_stats().compdists >= spb_b.compdists);
    assert!(mindex.build_stats().compdists > spb_b.compdists);
    // Storage: SPB is the smallest (SFC-compressed pre-computed distances).
    assert!(spb.storage_bytes() <= mindex.storage_bytes());
    assert!(spb.storage_bytes() <= omni.storage_bytes());
    assert!(spb.storage_bytes() < mtree.storage_bytes());
    // Construction I/O: SPB below the M-tree.
    assert!(spb_b.page_accesses < mtree.build_stats().page_accesses);
}

/// "Supports more efficient similarity search" — PA ordering of Fig. 12.
#[test]
fn spb_range_queries_use_fewest_page_accesses() {
    let data = dataset::color(4_000, 902);
    let metric = dataset::color_metric();
    let (d1, d4) = (TempDir::new("pr-mtree"), TempDir::new("pr-spb"));
    let mtree = MTree::build(d1.path(), &data, metric, &MTreeParams::default()).unwrap();
    let spb = SpbTree::build(d4.path(), &data, metric, &SpbConfig::default()).unwrap();
    let r = metric.max_distance() * 0.08;
    let mut spb_pa = 0u64;
    let mut mtree_pa = 0u64;
    let mut spb_cd = 0u64;
    let mut mtree_cd = 0u64;
    for q in data.iter().take(30) {
        spb.flush_caches();
        mtree.flush_caches();
        let (_, s) = spb.range(q, r).unwrap();
        let (_, m) = mtree.range(q, r).unwrap();
        spb_pa += s.page_accesses;
        mtree_pa += m.page_accesses;
        spb_cd += s.compdists;
        mtree_cd += m.compdists;
    }
    assert!(
        spb_pa < mtree_pa,
        "SPB PA {spb_pa} must be below M-tree PA {mtree_pa}"
    );
    assert!(
        spb_cd < mtree_cd,
        "SPB compdists {spb_cd} must be below M-tree compdists {mtree_cd}"
    );
}

/// Table 5's claim: greedy kNN traversal trades a few compdists for fewer
/// RAF page accesses on low-precision data (DNA).
#[test]
fn greedy_traversal_cuts_raf_page_accesses_on_dna() {
    // The greedy advantage appears once the candidate set spans more RAF
    // pages than the (32-page) cache holds — use a dataset large enough
    // for that regime, as in the paper's DNA runs.
    let data = dataset::dna(6_000, 903);
    let dir = TempDir::new("pg-dna");
    let tree = SpbTree::build(
        dir.path(),
        &data,
        dataset::dna_metric(),
        &SpbConfig::default(),
    )
    .unwrap();
    let mut inc_pa = 0u64;
    let mut gre_pa = 0u64;
    for q in data.iter().take(15) {
        tree.flush_caches();
        let (_, i) = tree.knn_with(q, 8, Traversal::Incremental).unwrap();
        tree.flush_caches();
        let (_, g) = tree.knn_with(q, 8, Traversal::Greedy).unwrap();
        inc_pa += i.page_accesses;
        gre_pa += g.page_accesses;
    }
    assert!(
        gre_pa < inc_pa,
        "greedy PA {gre_pa} must be below incremental PA {inc_pa} on DNA"
    );
}

/// Fig. 17's claim: SJA beats the eD-index join by a wide margin and
/// Quickjoin on distance computations.
#[test]
fn sja_outperforms_join_baselines() {
    let all = dataset::color(3_000, 904);
    let (q, o) = all.split_at(1_500);
    let metric = dataset::color_metric();
    let eps = metric.max_distance() * 0.06;

    let (dq, do_) = (TempDir::new("pj-q"), TempDir::new("pj-o"));
    let cfg = SpbConfig::for_join();
    let spb_o = SpbTree::build(do_.path(), o, metric, &cfg).unwrap();
    let spb_q = SpbTree::build_with_pivots(
        dq.path(),
        q,
        metric,
        spb_o.table().pivots().to_vec(),
        &cfg,
        0,
    )
    .unwrap();
    spb_q.flush_caches();
    spb_o.flush_caches();
    let (pairs, sja) = similarity_join(&spb_q, &spb_o, eps).unwrap();

    let ed_dir = TempDir::new("pj-ed");
    let ed = EdIndex::build(ed_dir.path(), q, o, metric, &EdIndexParams::for_eps(eps)).unwrap();
    ed.flush_caches();
    let (ed_pairs, ed_stats) = ed.join(eps).unwrap();

    let (qj_pairs, qj_cd) = quickjoin_rs(q, o, &metric, eps, &QuickJoinParams::default());

    assert_eq!(pairs.len(), ed_pairs.len());
    assert_eq!(pairs.len(), qj_pairs.len());
    assert!(
        sja.compdists < ed_stats.compdists,
        "SJA compdists {} must beat eD-index {}",
        sja.compdists,
        ed_stats.compdists
    );
    assert!(
        sja.compdists < qj_cd,
        "SJA compdists {} must beat Quickjoin {}",
        sja.compdists,
        qj_cd
    );
    assert!(
        sja.page_accesses < ed_stats.page_accesses,
        "SJA PA {} must beat eD-index PA {}",
        sja.page_accesses,
        ed_stats.page_accesses
    );
}

/// Fig. 9's claim: more pivots ⇒ fewer distance computations, and the
/// HFI selection is competitive with every alternative.
#[test]
fn more_pivots_reduce_compdists() {
    let data = dataset::color(3_000, 905);
    let metric = dataset::color_metric();
    let mut cd = Vec::new();
    for p in [1usize, 5, 9] {
        let dir = TempDir::new("pp-pivots");
        let tree = SpbTree::build(dir.path(), &data, metric, &SpbConfig::with_pivots(p)).unwrap();
        let mut total = 0u64;
        for q in data.iter().take(20) {
            tree.flush_caches();
            let (_, s) = tree.knn(q, 8).unwrap();
            total += s.compdists;
        }
        cd.push(total);
    }
    assert!(cd[0] > cd[1], "5 pivots must beat 1: {cd:?}");
    // Past the intrinsic dimensionality extra pivots saturate: 9 pivots may
    // pay their own φ(q) overhead without pruning more (the paper's own
    // observation in Fig. 9) — allow that overhead, nothing more.
    assert!(
        cd[2] as f64 <= cd[1] as f64 * 1.2,
        "9 pivots must stay within overhead of 5: {cd:?}"
    );
}
