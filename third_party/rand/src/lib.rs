//! Minimal offline stand-in for the `rand` crate (0.8 API surface).
//!
//! The build environment has no network access, so the workspace patches
//! `rand` to this crate (see the workspace `Cargo.toml`). It implements
//! exactly the surface the workspace uses:
//!
//! * [`rngs::StdRng`] / [`rngs::SmallRng`] — deterministic xoshiro256++
//!   generators seeded with [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over integer and float ranges, [`Rng::gen`] for
//!   standard values, [`Rng::sample`] for distributions;
//! * [`distributions::WeightedIndex`] (weighted discrete sampling);
//! * [`seq::index::sample`] and [`seq::SliceRandom::choose_multiple`]
//!   (partial Fisher–Yates without replacement).
//!
//! Streams differ from upstream `rand` (which uses ChaCha12 for `StdRng`),
//! so seeded datasets are reproducible *within* this workspace but not
//! bit-identical to ones generated with the real crate. Every consumer in
//! the workspace treats seeded data statistically, so this is harmless.

pub mod rngs {
    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    /// Same engine; `rand` offers a lighter generator under this name.
    pub type SmallRng = StdRng;

    impl StdRng {
        pub(crate) fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Seeding interface (only `seed_from_u64` is used by this workspace).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (splitmix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(mut state: u64) -> Self {
        rngs::StdRng {
            s: [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ],
        }
    }
}

/// Raw 64-bit output, the base of every derived method.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.next()
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Element types [`Rng::gen_range`] can draw uniformly.
///
/// Blanket `SampleRange` impls over this trait (rather than per-type
/// range impls) mirror the real crate so type inference can flow from
/// the surrounding expression into unsuffixed range literals.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_half_open<R: RngCore + ?Sized>(lo: u128, hi: u128, rng: &mut R) -> u128 {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        lo + wide % (hi - lo)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(lo: u128, hi: u128, rng: &mut R) -> u128 {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        match (hi - lo).checked_add(1) {
            Some(span) => lo + wide % span,
            None => wide, // full-domain range
        }
    }
}

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                lo + unit * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}
float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Values [`Rng::gen`] can produce.
pub trait StandardValue {
    /// Draws a standard-distribution value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! int_standard {
    ($($t:ty),*) => {$(
        impl StandardValue for $t {
            fn standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_standard!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardValue for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardValue for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardValue for f32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        ((rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64) as f32
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// A value drawn uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A standard-distribution value (uniform ints/floats, fair bool).
    fn gen<T: StandardValue>(&mut self) -> T {
        T::standard(self)
    }

    /// A `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }

    /// Draws from an explicit distribution.
    fn sample<T, D: distributions::Distribution<T>>(&mut self, dist: &D) -> T
    where
        Self: Sized,
    {
        dist.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod distributions {
    use super::RngCore;

    /// Types that can generate values of `T` given a source of randomness.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Error from constructing a [`WeightedIndex`].
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum WeightedError {
        /// No weights, all-zero weights, or a negative weight.
        InvalidWeight,
    }

    impl std::fmt::Display for WeightedError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "invalid weights for WeightedIndex")
        }
    }

    impl std::error::Error for WeightedError {}

    /// Weighted discrete distribution over indexes `0..n`.
    #[derive(Clone, Debug)]
    pub struct WeightedIndex<X> {
        cumulative: Vec<f64>,
        total: f64,
        _marker: std::marker::PhantomData<X>,
    }

    impl<X: Copy + Into<f64>> WeightedIndex<X> {
        /// Builds the distribution from per-index weights.
        pub fn new<I>(weights: I) -> Result<Self, WeightedError>
        where
            I: IntoIterator,
            I::Item: std::borrow::Borrow<X>,
        {
            let mut cumulative = Vec::new();
            let mut total = 0.0f64;
            for w in weights {
                let w: f64 = (*std::borrow::Borrow::borrow(&w)).into();
                if !(w >= 0.0) || !w.is_finite() {
                    return Err(WeightedError::InvalidWeight);
                }
                total += w;
                cumulative.push(total);
            }
            if cumulative.is_empty() || total <= 0.0 {
                return Err(WeightedError::InvalidWeight);
            }
            Ok(WeightedIndex {
                cumulative,
                total,
                _marker: std::marker::PhantomData,
            })
        }
    }

    impl<X> Distribution<usize> for WeightedIndex<X> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            let target = unit * self.total;
            self.cumulative
                .partition_point(|&c| c <= target)
                .min(self.cumulative.len() - 1)
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub mod index {
        use super::super::{Rng, RngCore};

        /// Result of [`sample`]: distinct indexes in selection order.
        #[derive(Clone, Debug)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            /// The selected indexes.
            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }

            /// Iterates over the selected indexes.
            pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
                self.0.iter().copied()
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;

            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Samples `amount` distinct indexes from `0..length` (partial
        /// Fisher–Yates).
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "sample amount exceeds length");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }

    /// Random selection from slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// `amount` distinct elements in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let picked = index::sample(rng, self.len(), amount.min(self.len()));
            picked
                .into_vec()
                .into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

pub mod prelude {
    pub use super::distributions::Distribution;
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

pub use prelude::{Rng as _, RngCore as _};
pub use {RngCore as _RngCoreReexport, SeedableRng as _SeedableReexport};

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, WeightedIndex};
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=2i32);
            assert!((0..=2).contains(&w));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
        // Both endpoints of small int ranges are reachable.
        let hits: std::collections::HashSet<i32> =
            (0..200).map(|_| rng.gen_range(0..=2)).collect();
        assert_eq!(hits.len(), 3);
    }

    #[test]
    fn weighted_index_prefers_heavy_weights() {
        let dist = WeightedIndex::<u32>::new([1u32, 0, 99]).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 3];
        for _ in 0..2000 {
            counts[dist.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 10, "counts = {counts:?}");
        assert!(WeightedIndex::<u32>::new(std::iter::empty::<u32>()).is_err());
    }

    #[test]
    fn sampling_without_replacement() {
        let mut rng = StdRng::seed_from_u64(3);
        let idx = super::seq::index::sample(&mut rng, 50, 10).into_vec();
        assert_eq!(idx.len(), 10);
        let set: std::collections::HashSet<_> = idx.iter().collect();
        assert_eq!(set.len(), 10);
        assert!(idx.iter().all(|&i| i < 50));

        let data: Vec<u32> = (0..20).collect();
        let picked: Vec<&u32> = data.choose_multiple(&mut rng, 5).collect();
        assert_eq!(picked.len(), 5);
    }
}
