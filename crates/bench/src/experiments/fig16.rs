//! Fig. 16 — accuracy of the kNN cost model vs `k`: the k-th NN distance
//! is first estimated through the nearest pivot's distance distribution
//! (eq. 5), then plugged into the range model (eqs. 3–4, 6).
//!
//! Paper's shape: slightly noisier than the range model (the `eND_k`
//! estimate adds error) but still high accuracy on average.

use spb_core::{CostEstimate, SpbConfig, Traversal};
use spb_metric::{dataset, Distance, MetricObject};

use crate::experiments::common::{build_spb, knn_avg, workload};
use crate::runner::fmt_num;
use crate::{Scale, Table};

const KS: [usize; 6] = [1, 2, 4, 8, 16, 32];

fn model_rows<O: MetricObject, D: Distance<O> + Clone>(
    name: &str,
    data: &[O],
    metric: D,
    scale: Scale,
) {
    let queries = workload(data, &scale);
    let (_dir, tree) = build_spb(&format!("f16-{name}"), data, metric, &SpbConfig::default());
    let mut t = Table::new(
        &format!("Fig. 16 ({name}): kNN cost model vs k"),
        &[
            "k",
            "PA actual",
            "PA est",
            "PA acc",
            "CD actual",
            "CD est",
            "CD acc",
        ],
    );
    for k in KS {
        let actual = knn_avg(&tree, queries, k, Traversal::Incremental);
        let mut est_pa = 0.0;
        let mut est_cd = 0.0;
        for q in queries {
            let q_phi = tree.table().phi(tree.metric().inner(), q);
            let est = tree.cost_model().estimate_knn(&q_phi, k as u64);
            est_pa += est.page_accesses;
            est_cd += est.compdists;
        }
        est_pa /= queries.len() as f64;
        est_cd /= queries.len() as f64;
        t.row(vec![
            k.to_string(),
            fmt_num(actual.pa),
            fmt_num(est_pa),
            format!("{:.2}", CostEstimate::accuracy(actual.pa, est_pa)),
            fmt_num(actual.compdists),
            fmt_num(est_cd),
            format!("{:.2}", CostEstimate::accuracy(actual.compdists, est_cd)),
        ]);
    }
    t.print();
}

/// Reproduces Fig. 16 at the given scale.
pub fn run(scale: Scale) {
    let seed = scale.seed();
    model_rows(
        "Color",
        &dataset::color(scale.color(), seed),
        dataset::color_metric(),
        scale,
    );
    model_rows(
        "Words",
        &dataset::words(scale.words(), seed),
        dataset::words_metric(),
        scale,
    );
}
