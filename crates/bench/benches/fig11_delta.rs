//! Fig. 11 bench: kNN latency as the δ-approximation granularity varies.

use criterion::{criterion_group, criterion_main, Criterion};
use spb_bench::experiments::common::build_spb;
use spb_bench::Scale;
use spb_core::{SpbConfig, Traversal};
use spb_metric::dataset;

fn bench(c: &mut Criterion) {
    let scale = Scale::Smoke;
    let data = dataset::synthetic(scale.synthetic(), scale.seed());
    let mut group = c.benchmark_group("fig11_delta");
    group.sample_size(20);
    for delta in [0.001f64, 0.005, 0.009] {
        let cfg = SpbConfig {
            delta: Some(delta),
            ..SpbConfig::default()
        };
        let (_dir, tree) = build_spb("bench-f11", &data, dataset::synthetic_metric(), &cfg);
        group.bench_function(format!("knn8_synthetic_delta{delta}"), |b| {
            let mut i = 0usize;
            b.iter(|| {
                tree.flush_caches();
                let q = &data[i % 100];
                i += 1;
                tree.knn_with(q, 8, Traversal::Incremental).unwrap().0.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
