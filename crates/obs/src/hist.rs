//! Lock-free log-bucketed histogram.
//!
//! 64 fixed buckets: value `0` lands in bucket 0, any other value `v`
//! in bucket `min(63, 64 - v.leading_zeros())`, i.e. bucket `b ≥ 1`
//! covers `[2^(b-1), 2^b)`. Recording touches three relaxed atomics
//! (bucket, sum, max) and never allocates or locks, so histograms are
//! safe on the hottest paths. Quantiles are estimated at snapshot time
//! by walking the cumulative bucket counts and taking the midpoint of
//! the crossing bucket — a factor-of-two resolution, which is exactly
//! enough to rank request phases against each other.
//!
//! A snapshot's `count` is derived as the sum of the bucket counts (not
//! kept as a separate atomic), so a concurrent snapshot can never see a
//! count that disagrees with its own buckets: every event it counts is
//! in exactly one bucket it read.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets: one per power of two of `u64` plus the zero
/// bucket, capped so the top bucket absorbs everything `≥ 2^62`.
pub const BUCKETS: usize = 64;

/// A lock-free log₂-bucketed histogram of `u64` samples (latency
/// histograms record nanoseconds; size histograms record bytes).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: 0 for 0, else `64 - leading_zeros`, capped.
#[inline]
fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        let b = 64 - value.leading_zeros() as usize;
        b.min(BUCKETS - 1)
    }
}

/// Inclusive lower bound of bucket `b`.
fn bucket_lo(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

/// Representative value reported for a quantile landing in bucket `b`:
/// the midpoint of the bucket's range.
fn bucket_mid(b: usize) -> u64 {
    if b == 0 {
        return 0;
    }
    let lo = bucket_lo(b);
    lo + lo / 2
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample: three relaxed atomic ops, no locks, no
    /// allocation.
    #[inline]
    pub fn record(&self, value: u64) {
        let b = bucket_of(value);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Reads the bucket counts and derives count / quantiles. Concurrent
    /// recorders may land events between bucket reads; the snapshot is
    /// a consistent lower bound (every counted event is in a bucket the
    /// snapshot read).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        let mut count = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            counts[i] = b.load(Ordering::Relaxed);
            count += counts[i];
        }
        let max = self.max.load(Ordering::Relaxed);
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            max,
            p50: quantile(&counts, count, max, 0.50),
            p90: quantile(&counts, count, max, 0.90),
            p99: quantile(&counts, count, max, 0.99),
        }
    }

    /// Zeroes every bucket and the sum/max (between bench phases).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Quantile estimate: midpoint of the bucket where the cumulative count
/// crosses `q * count`, clamped to the observed max (the top bucket's
/// midpoint can exceed it).
fn quantile(counts: &[u64; BUCKETS], count: u64, max: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((count as f64) * q).ceil() as u64;
    let rank = rank.clamp(1, count);
    let mut cum = 0u64;
    for (b, &c) in counts.iter().enumerate() {
        cum += c;
        if cum >= rank {
            return bucket_mid(b).min(max);
        }
    }
    max
}

/// Point-in-time view of one histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples (mean = `sum / count`).
    pub sum: u64,
    /// Largest sample seen.
    pub max: u64,
    /// Estimated median (log-bucket resolution).
    pub p50: u64,
    /// Estimated 90th percentile.
    pub p90: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0);
    }

    #[test]
    fn count_sum_max_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 100, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_106);
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn quantiles_are_within_a_factor_of_two() {
        let h = Histogram::new();
        for _ in 0..98 {
            h.record(1_000); // ~p50 and p90 land here
        }
        h.record(1_000_000);
        h.record(1_000_000); // p99 tail
        let s = h.snapshot();
        assert!(
            s.p50 >= 512 && s.p50 <= 2_000,
            "p50 {} should bracket 1000",
            s.p50
        );
        assert!(
            s.p99 >= 500_000,
            "p99 {} should land in the tail bucket",
            s.p99
        );
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99);
        assert!(s.p99 <= s.max);
    }

    #[test]
    fn quantiles_never_exceed_observed_max() {
        let h = Histogram::new();
        h.record(3); // bucket [2,4), midpoint 3
        let s = h.snapshot();
        assert_eq!(s.p50, 3);
        assert_eq!(s.p99, 3);
    }

    #[test]
    fn reset_zeroes_everything() {
        let h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }
}
