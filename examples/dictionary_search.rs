//! Spell-checker scenario from the paper's introduction: classify query
//! words by their nearest dictionary entries, comparing the SPB-tree
//! against a linear scan and against the M-tree baseline.
//!
//! Demonstrates: choosing the pivot count from the intrinsic
//! dimensionality (Section 3.2), kNN with both traversal strategies
//! (Table 5), and the compdists/PA trade-off the paper measures.
//!
//! Run with:
//! ```text
//! cargo run --release --example dictionary_search
//! ```

use spb::metric::{
    dataset, intrinsic_dimensionality, pairwise_distance_sample, EditDistance, Word,
};
use spb::storage::TempDir;
use spb::{SpbConfig, SpbTree, Traversal};
use spb_mams::{MTree, MTreeParams};

fn main() -> std::io::Result<()> {
    let dictionary = dataset::words(40_000, 1);
    let metric = EditDistance::default();

    // Size the pivot set from the dataset's intrinsic dimensionality, as
    // the paper recommends (Section 3.2).
    let sample = pairwise_distance_sample(&dictionary, &metric, 2_000, 3);
    let rho = intrinsic_dimensionality(&sample);
    let num_pivots = (rho.round() as usize).clamp(3, 9);
    println!("intrinsic dimensionality = {rho:.2} -> using {num_pivots} pivots");

    let dir = TempDir::new("dict-spb");
    let cfg = SpbConfig::with_pivots(num_pivots);
    let spb = SpbTree::build(dir.path(), &dictionary, metric, &cfg)?;

    let mdir = TempDir::new("dict-mtree");
    let mtree = MTree::build(mdir.path(), &dictionary, metric, &MTreeParams::default())?;

    // Misspelled queries: mutate dictionary words.
    let queries: Vec<Word> = dictionary
        .iter()
        .take(20)
        .map(|w| {
            let mut s = w.as_str().to_owned();
            s.push('x'); // a one-edit typo
            Word::new(s)
        })
        .collect();

    println!(
        "\n{:<22} {:>10} {:>8}   suggestions",
        "query", "compdists", "PA"
    );
    let mut spb_cd = 0u64;
    let mut scan_cd = 0u64;
    for q in &queries {
        spb.flush_caches();
        let (nn, stats) = spb.knn_with(q, 3, Traversal::Incremental)?;
        spb_cd += stats.compdists;
        scan_cd += dictionary.len() as u64;
        let suggestions: Vec<&str> = nn.iter().map(|(_, w, _)| w.as_str()).collect();
        println!(
            "{:<22} {:>10} {:>8}   {:?}",
            q.as_str(),
            stats.compdists,
            stats.page_accesses,
            suggestions
        );
    }
    println!(
        "\nSPB-tree answered with {spb_cd} total distance computations; a linear scan would need {scan_cd} ({}x more).",
        scan_cd / spb_cd.max(1)
    );

    // Compare against the M-tree and the greedy traversal on one query.
    let q = &queries[0];
    spb.flush_caches();
    let (_, inc) = spb.knn_with(q, 3, Traversal::Incremental)?;
    spb.flush_caches();
    let (_, gre) = spb.knn_with(q, 3, Traversal::Greedy)?;
    mtree.flush_caches();
    let (_, mt) = mtree.knn(q, 3)?;
    println!("\none-query comparison (k=3):");
    println!(
        "  SPB incremental: {:>6} compdists, {:>4} PA",
        inc.compdists, inc.page_accesses
    );
    println!(
        "  SPB greedy     : {:>6} compdists, {:>4} PA",
        gre.compdists, gre.page_accesses
    );
    println!(
        "  M-tree         : {:>6} compdists, {:>4} PA",
        mt.compdists, mt.page_accesses
    );
    Ok(())
}
