//! A file of fixed-size pages.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::page::{Page, PageId, PAGE_SIZE};

/// A pager over one file: allocates, reads and writes 4 KB pages and counts
/// raw disk operations. Higher layers access it through a [`BufferPool`]
/// (which turns the raw counts into the paper's *PA* metric).
///
/// [`BufferPool`]: crate::BufferPool
pub struct Pager {
    file: Mutex<File>,
    num_pages: AtomicU64,
    disk_reads: AtomicU64,
    disk_writes: AtomicU64,
}

impl Pager {
    /// Creates (truncating) a pager file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Pager {
            file: Mutex::new(file),
            num_pages: AtomicU64::new(0),
            disk_reads: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
        })
    }

    /// Opens an existing pager file.
    ///
    /// # Errors
    /// Fails if the file does not exist or its size is not a multiple of
    /// [`PAGE_SIZE`].
    pub fn open(path: &Path) -> io::Result<Self> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file length {len} is not a multiple of the page size"),
            ));
        }
        Ok(Pager {
            file: Mutex::new(file),
            num_pages: AtomicU64::new(len / PAGE_SIZE as u64),
            disk_reads: AtomicU64::new(0),
            disk_writes: AtomicU64::new(0),
        })
    }

    /// Allocates a fresh zeroed page at the end of the file.
    pub fn allocate(&self) -> io::Result<PageId> {
        let id = PageId(self.num_pages.fetch_add(1, Ordering::SeqCst));
        // Materialise the page so the file length stays consistent.
        self.write_page(id, &Page::new())?;
        Ok(id)
    }

    /// Reads a page from disk.
    pub fn read_page(&self, id: PageId) -> io::Result<Page> {
        assert!(
            id.0 < self.num_pages.load(Ordering::SeqCst),
            "read of unallocated page {id:?}"
        );
        let mut page = Page::new();
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.byte_offset()))?;
        file.read_exact(page.bytes_mut())?;
        self.disk_reads.fetch_add(1, Ordering::Relaxed);
        Ok(page)
    }

    /// Writes a page to disk.
    pub fn write_page(&self, id: PageId, page: &Page) -> io::Result<()> {
        assert!(
            id.0 < self.num_pages.load(Ordering::SeqCst),
            "write of unallocated page {id:?}"
        );
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id.byte_offset()))?;
        file.write_all(page.bytes())?;
        self.disk_writes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Number of allocated pages — the index's storage size in pages
    /// (Table 6 reports `pages · 4 KB`).
    pub fn num_pages(&self) -> u64 {
        self.num_pages.load(Ordering::SeqCst)
    }

    /// Raw disk reads performed so far.
    pub fn disk_reads(&self) -> u64 {
        self.disk_reads.load(Ordering::Relaxed)
    }

    /// Raw disk writes performed so far.
    pub fn disk_writes(&self) -> u64 {
        self.disk_writes.load(Ordering::Relaxed)
    }

    /// Flushes the OS file buffer.
    pub fn sync(&self) -> io::Result<()> {
        self.file.lock().sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tempdir::TempDir;

    #[test]
    fn allocate_write_read_roundtrip() {
        let dir = TempDir::new("pager-roundtrip");
        let pager = Pager::create(&dir.path().join("p.db")).unwrap();
        let a = pager.allocate().unwrap();
        let b = pager.allocate().unwrap();
        assert_eq!((a, b), (PageId(0), PageId(1)));
        assert_eq!(pager.num_pages(), 2);

        let mut p = Page::new();
        p.write_u64(0, 42);
        pager.write_page(b, &p).unwrap();
        assert_eq!(pager.read_page(b).unwrap().read_u64(0), 42);
        assert_eq!(pager.read_page(a).unwrap().read_u64(0), 0);
        assert!(pager.disk_reads() >= 2);
        assert!(pager.disk_writes() >= 3); // two allocs + one write
    }

    #[test]
    fn reopen_preserves_pages() {
        let dir = TempDir::new("pager-reopen");
        let path = dir.path().join("p.db");
        {
            let pager = Pager::create(&path).unwrap();
            let id = pager.allocate().unwrap();
            let mut p = Page::new();
            p.write_slice(10, b"persisted");
            pager.write_page(id, &p).unwrap();
            pager.sync().unwrap();
        }
        let pager = Pager::open(&path).unwrap();
        assert_eq!(pager.num_pages(), 1);
        assert_eq!(pager.read_page(PageId(0)).unwrap().read_slice(10, 9), b"persisted");
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn reading_unallocated_page_panics() {
        let dir = TempDir::new("pager-unalloc");
        let pager = Pager::create(&dir.path().join("p.db")).unwrap();
        let _ = pager.read_page(PageId(0));
    }

    #[test]
    fn open_rejects_corrupt_length() {
        let dir = TempDir::new("pager-corrupt");
        let path = dir.path().join("p.db");
        std::fs::write(&path, b"not a page").unwrap();
        assert!(Pager::open(&path).is_err());
    }
}
