//! Disk substrate for every index in the workspace.
//!
//! The paper's performance model is explicitly disk-based: all metric access
//! methods use a fixed page size of 4 KB, and the I/O cost of an operation
//! is its number of **page accesses** (*PA*). This crate provides that
//! substrate so each index measures I/O identically:
//!
//! * [`Page`] / [`Pager`] — a file of fixed 4 KB pages with raw read/write
//!   counters;
//! * [`BufferPool`] — an LRU cache in front of a pager; the paper's cache
//!   experiments (Fig. 10) vary its capacity, and queries flush it so each
//!   of the 500 workload queries is measured cold;
//! * [`Raf`] — the *random access file* holding variable-length object
//!   records `(id, len, obj)` separately from the index (Fig. 4);
//! * [`TempDir`] — a tiny self-cleaning scratch-directory helper used by
//!   tests, examples and benchmarks.
//!
//! The durability layer added on top of that substrate:
//!
//! * every physical page carries a CRC-32 footer ([`PAGE_DATA_SIZE`] bytes
//!   remain for node codecs), verified on read ([`StorageCorrupt`] /
//!   [`is_corrupt`]);
//! * [`Wal`] — a redo-only, group-commit write-ahead log of page and meta
//!   after-images;
//! * [`atomic_write_file`] — temp-file + fsync + rename whole-file
//!   replacement for small metadata files;
//! * [`fault`] — a deterministic crash/corruption injection harness used
//!   by the recovery tests.

#![forbid(unsafe_code)]

mod atomic;
mod cache;
mod checksum;
pub mod fault;
pub mod lockrank;
mod page;
mod pager;
mod raf;
mod tempdir;
mod wal;

pub use atomic::atomic_write_file;
pub use cache::{BufferPool, IoStats};
pub use checksum::{crc32, Crc32};
pub use page::{Page, PageId, PAGE_CRC_SIZE, PAGE_DATA_SIZE, PAGE_SIZE};
pub use pager::{is_bad_page_ref, is_corrupt, BadPageRef, Pager, StorageCorrupt};
pub use raf::{Raf, RafEntry, RafPtr};
pub use tempdir::TempDir;
pub use wal::{decode_record, encode_record, Wal, WalFileTag, WalRecord, WalScan};
