//! # spb-cluster: a multi-node SPB-tree
//!
//! The SPB-tree maps metric objects onto a linear space-filling-curve
//! key space, which makes *range partitioning* the natural scale-out
//! axis: this crate composes the existing single-node pieces into a
//! sharded, replicated cluster without touching the query algorithms.
//!
//! Three layers:
//!
//! 1. **Shard planning** ([`spb_core::plan_shards`]): pivots are
//!    selected once over the full dataset, every object is mapped to
//!    its SFC key exactly as a single-node build would, and the sorted
//!    run is cut into `N` contiguous key ranges. Each shard bulk-loads
//!    its members with the *shared* pivot set, so per-shard answers
//!    merge into results byte-identical to a single node's.
//! 2. **Scatter-gather routing** ([`Router`]): queries fan out over the
//!    CRC-framed wire protocol to every shard that can contribute —
//!    shards are pruned with a per-shard pivot-space lower bound
//!    ([`spb_core::shard_mind`]), kNN proceeds in waves under a
//!    monotonically shrinking global radius, and per-query
//!    [`WireStats`](spb_server::wire::WireStats) are summed across
//!    shards. Fan-out and straggler latency feed `cluster.*`
//!    histograms in `spb-obs`.
//! 3. **Log-shipping read replicas** ([`Replica`]): a replica
//!    bootstraps from a checkpoint snapshot of its primary's directory,
//!    then pulls raw CRC-framed WAL segments over the `WalShip` wire op
//!    and applies them through the existing recovery path. The router
//!    fails reads over to a replica when a primary sheds
//!    (`Overloaded`), drains (`ShuttingDown`) or drops off the network.
//!
//! [`Cluster`] wires the three together in-process (one TCP server per
//! shard and per replica on loopback), which is what
//! `spb-cli cluster --shards N --replicas R` launches.

#![forbid(unsafe_code)]

mod cluster;
mod replica;
mod router;

pub use cluster::{Cluster, ClusterConfig};
pub use replica::{Replica, ReplicaError, ReplicaService};
pub use router::{merge_snapshots, merge_topk, sum_stats, Router, RouterError, ShardRoute};
