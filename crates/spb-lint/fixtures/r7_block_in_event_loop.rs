//! Known-bad fixture for R7 `no-block-in-event-loop`: blocking std I/O
//! on the event-loop thread, each call parking the only thread that
//! services every connection.

fn pump(stream: &mut std::net::TcpStream, listener: &std::net::TcpListener, buf: &mut [u8]) {
    let _ = stream.read_exact(buf);
    let _ = stream.write_all(buf);
    let _ = listener.accept();
}
